"""Tests for the engine's counters and timers."""

from repro.engine import EngineMetrics


class TestDerived:
    def test_hit_rate(self):
        m = EngineMetrics(cache_hits=3, cache_misses=1)
        assert m.cache_lookups == 4
        assert m.cache_hit_rate == 0.75

    def test_hit_rate_empty(self):
        assert EngineMetrics().cache_hit_rate == 0.0

    def test_histories_per_second(self):
        m = EngineMetrics(histories=10, wall_seconds=2.0)
        assert m.histories_per_second == 5.0
        assert EngineMetrics(histories=10).histories_per_second == 0.0


class TestAccumulation:
    def test_add_model_time(self):
        m = EngineMetrics()
        m.add_model_time("SC", 0.5)
        m.add_model_time("SC", 0.25)
        assert m.model_seconds == {"SC": 0.75}

    def test_merge_dict(self):
        m = EngineMetrics(histories=1, cache_hits=2)
        m.merge(
            {
                "histories": 3,
                "cache_hits": 4,
                "cache_misses": 1,
                "model_seconds": {"SC": 0.5},
            }
        )
        assert m.histories == 4
        assert m.cache_hits == 6 and m.cache_misses == 1
        assert m.model_seconds == {"SC": 0.5}

    def test_merge_instance(self):
        m = EngineMetrics()
        m.merge(EngineMetrics(checks=7, skipped=2))
        assert m.checks == 7 and m.skipped == 2

    def test_merge_empty_partial_is_a_no_op(self):
        m = EngineMetrics(histories=2, checks=5, cache_hits=1)
        m.add_model_time("SC", 0.5)
        m.add_phase_time("check", 0.25)
        before = m.to_dict()
        m.merge({})
        m.merge(EngineMetrics())
        after = m.to_dict()
        # wall_seconds/workers are driver-owned, never merged from partials;
        # everything else must be exactly what it was.
        assert after == before

    def test_merge_dict_and_instance_agree(self):
        partial = EngineMetrics(histories=3, checks=9, prepass_decided=4)
        partial.add_model_time("TSO", 0.125)
        partial.add_phase_time("prepass", 0.0625)
        via_instance, via_dict = EngineMetrics(), EngineMetrics()
        via_instance.merge(partial)
        via_dict.merge(partial.to_dict())
        assert via_instance.to_dict() == via_dict.to_dict()

    def test_add_phase_time_accumulates(self):
        m = EngineMetrics()
        m.add_phase_time("check", 0.5)
        m.add_phase_time("check", 0.25)
        m.add_phase_time("prepass", 0.125)
        assert m.phase_seconds == {"check": 0.75, "prepass": 0.125}

    def test_merge_phase_seconds_from_partials(self):
        m = EngineMetrics()
        m.merge({"phase_seconds": {"check": 0.5, "prepass": 0.25}})
        m.merge({"phase_seconds": {"check": 0.5}})
        assert m.phase_seconds == {"check": 1.0, "prepass": 0.25}


class TestPresentation:
    def test_to_dict_json_compatible(self):
        import json

        m = EngineMetrics(histories=2, checks=26, cache_hits=20, cache_misses=8)
        m.add_model_time("SC", 0.001)
        d = m.to_dict()
        assert json.loads(json.dumps(d)) == d
        assert d["cache_hit_rate"] == round(20 / 28, 4)

    def test_render_mentions_the_headline_figures(self):
        m = EngineMetrics(
            histories=17, checks=221, cache_hits=9, cache_misses=1, wall_seconds=0.5
        )
        m.add_model_time("SC", 0.2)
        text = m.render()
        assert "cache hit rate: 90.0%" in text
        assert "histories: 17 checked" in text
        assert "SC" in text

    def test_render_includes_phase_split_only_when_present(self):
        m = EngineMetrics(histories=1, checks=1)
        assert "per-phase time" not in m.render()
        m.add_phase_time("prepass", 0.002)
        m.add_phase_time("check", 0.001)
        assert "per-phase time: check=0.001s, prepass=0.002s" in m.render()

    def test_to_dict_includes_phase_seconds(self):
        import json

        m = EngineMetrics()
        m.add_phase_time("check", 0.1234567)
        d = m.to_dict()
        assert d["phase_seconds"] == {"check": 0.123457}
        assert json.loads(json.dumps(d)) == d
