"""Tests for the engine's counters and timers."""

from repro.engine import EngineMetrics


class TestDerived:
    def test_hit_rate(self):
        m = EngineMetrics(cache_hits=3, cache_misses=1)
        assert m.cache_lookups == 4
        assert m.cache_hit_rate == 0.75

    def test_hit_rate_empty(self):
        assert EngineMetrics().cache_hit_rate == 0.0

    def test_histories_per_second(self):
        m = EngineMetrics(histories=10, wall_seconds=2.0)
        assert m.histories_per_second == 5.0
        assert EngineMetrics(histories=10).histories_per_second == 0.0


class TestAccumulation:
    def test_add_model_time(self):
        m = EngineMetrics()
        m.add_model_time("SC", 0.5)
        m.add_model_time("SC", 0.25)
        assert m.model_seconds == {"SC": 0.75}

    def test_merge_dict(self):
        m = EngineMetrics(histories=1, cache_hits=2)
        m.merge(
            {
                "histories": 3,
                "cache_hits": 4,
                "cache_misses": 1,
                "model_seconds": {"SC": 0.5},
            }
        )
        assert m.histories == 4
        assert m.cache_hits == 6 and m.cache_misses == 1
        assert m.model_seconds == {"SC": 0.5}

    def test_merge_instance(self):
        m = EngineMetrics()
        m.merge(EngineMetrics(checks=7, skipped=2))
        assert m.checks == 7 and m.skipped == 2


class TestPresentation:
    def test_to_dict_json_compatible(self):
        import json

        m = EngineMetrics(histories=2, checks=26, cache_hits=20, cache_misses=8)
        m.add_model_time("SC", 0.001)
        d = m.to_dict()
        assert json.loads(json.dumps(d)) == d
        assert d["cache_hit_rate"] == round(20 / 28, 4)

    def test_render_mentions_the_headline_figures(self):
        m = EngineMetrics(
            histories=17, checks=221, cache_hits=9, cache_misses=1, wall_seconds=0.5
        )
        m.add_model_time("SC", 0.2)
        text = m.render()
        assert "cache hit rate: 90.0%" in text
        assert "histories: 17 checked" in text
        assert "SC" in text
