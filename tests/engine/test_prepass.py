"""Engine integration of the static pre-pass (DENY and witnessed ADMIT)."""

from repro.engine import CheckEngine, SweepSpec


def _verdicts(report):
    return [(r["key"], r["models"]) for r in report.results]


class TestEnginePrepass:
    def test_catalog_verdicts_identical_with_and_without(self):
        spec = SweepSpec(source="catalog", models=("all",))
        on = CheckEngine(jobs=1).run(spec)
        off = CheckEngine(jobs=1, prepass=False).run(spec)
        assert _verdicts(on) == _verdicts(off)

    def test_parallel_workers_agree_with_serial(self):
        spec = SweepSpec(source="catalog", models=("SC", "TSO", "Causal"))
        serial = CheckEngine(jobs=1).run(spec)
        parallel = CheckEngine(jobs=2).run(spec)
        assert _verdicts(serial) == _verdicts(parallel)
        assert (
            serial.metrics.prepass_decided == parallel.metrics.prepass_decided
        )

    def test_metrics_count_decided_checks(self):
        spec = SweepSpec(source="catalog", models=("all",))
        on = CheckEngine(jobs=1).run(spec)
        off = CheckEngine(jobs=1, prepass=False).run(spec)
        assert on.metrics.prepass_decided > 0
        assert off.metrics.prepass_decided == 0
        assert on.metrics.prepass_decided <= on.metrics.checks

    def test_decided_checks_skip_the_search(self):
        # A pre-pass decision records explored=0 where the plain kernel
        # run explored candidates — those are exactly the searches
        # skipped, and the verdicts must still match the kernel's.
        spec = SweepSpec(source="catalog", models=("SC",))
        on = CheckEngine(jobs=1).run(spec)
        off = CheckEngine(jobs=1, prepass=False).run(spec)
        off_rows = {r["key"]: r for r in off.results}
        skipped = [
            r
            for r in on.results
            if r["explored"]["SC"] == 0
            and off_rows[r["key"]]["explored"]["SC"] > 0
        ]
        assert on.metrics.prepass_decided > 0
        assert len(skipped) <= on.metrics.prepass_decided
        for r in skipped:
            assert r["models"]["SC"] == off_rows[r["key"]]["models"]["SC"]

    def test_metrics_count_admitted_checks(self):
        spec = SweepSpec(source="catalog", models=("all",))
        on = CheckEngine(jobs=1).run(spec)
        assert on.metrics.prepass_admitted > 0
        assert on.metrics.prepass_admitted <= on.metrics.prepass_decided
        assert (
            on.metrics.to_dict()["prepass_admitted"]
            == on.metrics.prepass_admitted
        )

    def test_metrics_render_and_serialize_the_counter(self):
        spec = SweepSpec(source="catalog", models=("all",))
        metrics = CheckEngine(jobs=1).run(spec).metrics
        assert "static pre-pass" in metrics.render()
        assert metrics.to_dict()["prepass_decided"] == metrics.prepass_decided

    def test_engine_classify_respects_the_flag(self):
        from repro.litmus import CATALOG

        h = CATALOG["fig1-sb"].history
        on = CheckEngine(jobs=1).classify(h, ("SC", "TSO"))
        off = CheckEngine(jobs=1, prepass=False).classify(h, ("SC", "TSO"))
        assert on == off == {"SC": False, "TSO": True}


class TestClassifyHistoriesPrepass:
    def test_serial_classification_unchanged(self):
        from repro.lattice import classify_histories
        from repro.litmus import CATALOG

        histories = [t.history for t in CATALOG.values()]
        models = ("SC", "TSO", "PC", "Causal", "PRAM")
        with_prepass = classify_histories(histories, models)
        without = classify_histories(histories, models, prepass=False)
        assert with_prepass.allowed == without.allowed
