"""Tests for the append-only JSONL result store."""

import json

import pytest

from repro.core.errors import EngineError
from repro.engine import ResultStore


def _make_store(path, keys=("a", "b")):
    with ResultStore(path) as store:
        store.append_run_header({"spec": {"source": "catalog"}, "jobs": 1})
        for key in keys:
            store.append_result(key, {"SC": True, "TSO": False}, {"SC": 3})
        store.append_summary(store.summarize())
    return path


class TestRoundTrip:
    def test_records_back(self, tmp_path):
        path = _make_store(tmp_path / "r.jsonl")
        store = ResultStore(path)
        records = list(store.records())
        assert [r["type"] for r in records] == ["run", "result", "result", "summary"]
        assert store.completed_keys() == {"a", "b"}

    def test_result_lines_canonical(self, tmp_path):
        path = _make_store(tmp_path / "r.jsonl")
        lines = [
            line
            for line in path.read_text().splitlines()
            if '"type":"result"' in line
        ]
        for line in lines:
            record = json.loads(line)
            assert line == json.dumps(record, sort_keys=True, separators=(",", ":"))

    def test_missing_file_is_empty(self, tmp_path):
        store = ResultStore(tmp_path / "absent.jsonl")
        assert list(store.records()) == []
        assert store.completed_keys() == set()

    def test_empty_key_rejected(self, tmp_path):
        with pytest.raises(EngineError, match="key"):
            ResultStore(tmp_path / "r.jsonl").append_result("", {})


def _truncate_last_result(path):
    """Simulate a run killed mid-write: cut the last result line in half."""
    lines = path.read_text().splitlines(keepends=True)
    idx = max(i for i, line in enumerate(lines) if '"type":"result"' in line)
    path.write_text("".join(lines[:idx]) + lines[idx][: len(lines[idx]) // 2])


class TestTruncation:
    def test_truncated_tail_ignored(self, tmp_path):
        path = _make_store(tmp_path / "r.jsonl")
        _truncate_last_result(path)
        store = ResultStore(path)
        assert store.completed_keys() == {"a"}  # the cut record is gone

    def test_append_after_truncation_stays_parseable(self, tmp_path):
        path = _make_store(tmp_path / "r.jsonl")
        _truncate_last_result(path)
        with ResultStore(path) as store:
            store.append_result("c", {"SC": True})
        store = ResultStore(path)
        assert store.completed_keys() == {"a", "c"}

    def test_garbage_lines_skipped(self, tmp_path):
        path = tmp_path / "r.jsonl"
        path.write_text('not json\n{"type":"result","key":"k","models":{}}\n')
        assert ResultStore(path).completed_keys() == {"k"}


class TestSummarize:
    def test_counts_allowed_per_model(self, tmp_path):
        path = tmp_path / "r.jsonl"
        with ResultStore(path) as store:
            store.append_result("a", {"SC": True, "TSO": True})
            store.append_result("b", {"SC": False, "TSO": True})
        summary = ResultStore(path).summarize()
        assert summary["results"] == 2
        assert summary["distinct_keys"] == 2
        assert summary["allowed_counts"] == {"SC": 1, "TSO": 2}

    def test_rejecting_model_still_listed(self, tmp_path):
        path = tmp_path / "r.jsonl"
        with ResultStore(path) as store:
            store.append_result("a", {"SC": False})
        assert ResultStore(path).summarize()["allowed_counts"] == {"SC": 0}


class TestDirectoryCreation:
    def test_nested_path_created(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "r.jsonl"
        with ResultStore(path) as store:
            store.append_result("a", {"SC": True})
        assert path.exists()
