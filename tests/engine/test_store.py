"""Tests for the append-only JSONL result store."""

import json

import pytest

from repro.core.errors import EngineError
from repro.engine import ResultStore


def _make_store(path, keys=("a", "b")):
    with ResultStore(path) as store:
        store.append_run_header({"spec": {"source": "catalog"}, "jobs": 1})
        for key in keys:
            store.append_result(key, {"SC": True, "TSO": False}, {"SC": 3})
        store.append_summary(store.summarize())
    return path


class TestRoundTrip:
    def test_records_back(self, tmp_path):
        path = _make_store(tmp_path / "r.jsonl")
        store = ResultStore(path)
        records = list(store.records())
        assert [r["type"] for r in records] == ["run", "result", "result", "summary"]
        assert store.completed_keys() == {"a", "b"}

    def test_result_lines_canonical(self, tmp_path):
        path = _make_store(tmp_path / "r.jsonl")
        lines = [
            line
            for line in path.read_text().splitlines()
            if '"type":"result"' in line
        ]
        for line in lines:
            record = json.loads(line)
            assert line == json.dumps(record, sort_keys=True, separators=(",", ":"))

    def test_missing_file_is_empty(self, tmp_path):
        store = ResultStore(tmp_path / "absent.jsonl")
        assert list(store.records()) == []
        assert store.completed_keys() == set()

    def test_empty_key_rejected(self, tmp_path):
        with pytest.raises(EngineError, match="key"):
            ResultStore(tmp_path / "r.jsonl").append_result("", {})


def _truncate_last_result(path):
    """Simulate a run killed mid-write: cut the last result line in half."""
    lines = path.read_text().splitlines(keepends=True)
    idx = max(i for i, line in enumerate(lines) if '"type":"result"' in line)
    path.write_text("".join(lines[:idx]) + lines[idx][: len(lines[idx]) // 2])


class TestTruncation:
    def test_truncated_tail_ignored(self, tmp_path):
        path = _make_store(tmp_path / "r.jsonl")
        _truncate_last_result(path)
        store = ResultStore(path)
        assert store.completed_keys() == {"a"}  # the cut record is gone

    def test_append_after_truncation_stays_parseable(self, tmp_path):
        path = _make_store(tmp_path / "r.jsonl")
        _truncate_last_result(path)
        with ResultStore(path) as store:
            store.append_result("c", {"SC": True})
        store = ResultStore(path)
        assert store.completed_keys() == {"a", "c"}

    def test_unterminated_complete_record_survives_append(self, tmp_path):
        # A kill between the record and its newline loses nothing.
        path = tmp_path / "r.jsonl"
        path.write_text('{"type":"result","key":"a","models":{}}')  # no \n
        with ResultStore(path) as store:
            store.append_result("b", {"SC": True})
        assert ResultStore(path).completed_keys() == {"a", "b"}

    def test_final_garbage_line_skipped(self, tmp_path):
        # A bad *final* line is indistinguishable from a truncated tail.
        path = tmp_path / "r.jsonl"
        path.write_text('{"type":"result","key":"k","models":{}}\nnot json\n')
        assert ResultStore(path).completed_keys() == {"k"}


class TestInteriorCorruption:
    def test_garbage_before_records_raises(self, tmp_path):
        # Interior garbage is corruption, not truncation: resuming from an
        # incomplete skip-set would silently re-run or skip completed work.
        path = tmp_path / "r.jsonl"
        path.write_text('not json\n{"type":"result","key":"k","models":{}}\n')
        with pytest.raises(EngineError, match="line 1"):
            ResultStore(path).completed_keys()

    def test_garbage_between_records_raises(self, tmp_path):
        path = _make_store(tmp_path / "r.jsonl")
        lines = path.read_text().splitlines(keepends=True)
        path.write_text(lines[0] + '{"oops": \n' + "".join(lines[1:]))
        with pytest.raises(EngineError, match="line 2"):
            list(ResultStore(path).records())

    def test_error_names_the_file(self, tmp_path):
        path = tmp_path / "r.jsonl"
        path.write_text('broken\n{"type":"result","key":"k","models":{}}\n')
        with pytest.raises(EngineError, match="r.jsonl"):
            list(ResultStore(path).records())

    def test_blank_lines_after_bad_tail_are_fine(self, tmp_path):
        # Trailing whitespace after a truncated tail is still truncation.
        path = tmp_path / "r.jsonl"
        path.write_text('{"type":"result","key":"k","models":{}}\ntrunc\n\n  \n')
        assert ResultStore(path).completed_keys() == {"k"}


class TestSummarize:
    def test_counts_allowed_per_model(self, tmp_path):
        path = tmp_path / "r.jsonl"
        with ResultStore(path) as store:
            store.append_result("a", {"SC": True, "TSO": True})
            store.append_result("b", {"SC": False, "TSO": True})
        summary = ResultStore(path).summarize()
        assert summary["results"] == 2
        assert summary["distinct_keys"] == 2
        assert summary["allowed_counts"] == {"SC": 1, "TSO": 2}

    def test_rejecting_model_still_listed(self, tmp_path):
        path = tmp_path / "r.jsonl"
        with ResultStore(path) as store:
            store.append_result("a", {"SC": False})
        assert ResultStore(path).summarize()["allowed_counts"] == {"SC": 0}

    def test_duplicate_keys_counted_once(self, tmp_path):
        # A record appended just before a kill is re-run after an
        # incomplete resume; its key then appears twice in the log.
        path = tmp_path / "r.jsonl"
        with ResultStore(path) as store:
            store.append_result("a", {"SC": True})
            store.append_result("b", {"SC": True})
            store.append_result("a", {"SC": True})  # resumed re-run
        summary = ResultStore(path).summarize()
        assert summary["results"] == 3
        assert summary["distinct_keys"] == 2
        assert summary["allowed_counts"] == {"SC": 2}

    def test_last_record_wins_for_a_key(self, tmp_path):
        path = tmp_path / "r.jsonl"
        with ResultStore(path) as store:
            store.append_result("a", {"SC": True})
            store.append_result("a", {"SC": False})
        summary = ResultStore(path).summarize()
        assert summary["distinct_keys"] == 1
        assert summary["allowed_counts"] == {"SC": 0}

    def test_distinct_keys_matches_completed_keys(self, tmp_path):
        path = tmp_path / "r.jsonl"
        with ResultStore(path) as store:
            for key in ("a", "b", "a", "c", "b"):
                store.append_result(key, {"SC": True})
        store = ResultStore(path)
        assert store.summarize()["distinct_keys"] == len(store.completed_keys())


class TestDirectoryCreation:
    def test_nested_path_created(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "r.jsonl"
        with ResultStore(path) as store:
            store.append_result("a", {"SC": True})
        assert path.exists()
