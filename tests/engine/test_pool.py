"""Tests for the executor: determinism across worker counts, resume, caching.

The determinism property here is the engine's core contract: the result
records — and therefore the bytes written to the store — are identical for
any ``jobs`` value.
"""

import pytest

from repro.core.errors import EngineError
from repro.engine import CheckEngine, ResultStore, SweepSpec
from repro.litmus import CATALOG, parse_history

SPEC = SweepSpec(source="catalog", models=("all",))
SMALL = SweepSpec(source="catalog", models=("SC", "TSO", "PRAM"))


class TestConstruction:
    def test_bad_jobs(self):
        with pytest.raises(EngineError, match="jobs"):
            CheckEngine(jobs=0)

    def test_bad_chunk_size(self):
        with pytest.raises(EngineError, match="chunk_size"):
            CheckEngine(chunk_size=0)


class TestClassify:
    def test_matches_direct_check(self):
        from repro.checking import check

        h = parse_history("p: w(x)1 r(y)0 | q: w(y)1 r(x)0")
        verdicts = CheckEngine().classify(h)
        for model, allowed in verdicts.items():
            assert allowed == check(h, model).allowed

    def test_cache_warm_after_classify(self):
        engine = CheckEngine()
        engine.classify(parse_history("p: w(x)1 | q: r(x)1"))
        assert engine.cache.hit_rate > 0

    def test_map_classify_order(self):
        hs = [t.history for t in CATALOG.values()]
        rows = CheckEngine().map_classify(hs, ("SC",))
        direct = CheckEngine(jobs=2).map_classify(hs, ("SC",))
        assert rows == direct


class TestDeterminism:
    """Satellite (c): ``--jobs 1`` and ``--jobs 4`` byte-identical."""

    def test_results_identical_across_worker_counts(self):
        serial = CheckEngine(jobs=1).run(SPEC)
        parallel = CheckEngine(jobs=4).run(SPEC)
        assert serial.results == parallel.results

    def test_store_result_lines_byte_identical(self, tmp_path):
        paths = []
        for jobs in (1, 4):
            path = tmp_path / f"jobs{jobs}.jsonl"
            with ResultStore(path) as store:
                CheckEngine(jobs=jobs).run(SPEC, store=store)
            paths.append(path)

        def result_lines(path):
            return [
                line
                for line in path.read_bytes().splitlines()
                if b'"type":"result"' in line
            ]

        assert result_lines(paths[0]) == result_lines(paths[1])


class TestRun:
    def test_counts_and_metrics(self):
        report = CheckEngine().run(SMALL)
        assert report.metrics.histories == len(CATALOG)
        assert report.metrics.checks == len(CATALOG) * 3
        assert report.metrics.cache_hit_rate > 0
        assert report.metrics.wall_seconds > 0
        assert set(report.counts) == {"SC", "TSO", "PRAM"}

    def test_render_smoke(self):
        report = CheckEngine().run(SMALL)
        assert "cache hit rate" in report.render()

    def test_store_gets_header_results_summary(self, tmp_path):
        path = tmp_path / "out.jsonl"
        with ResultStore(path) as store:
            CheckEngine().run(SMALL, store=store)
        types = [r["type"] for r in ResultStore(path).records()]
        assert types[0] == "run" and types[-1] == "summary"
        assert types.count("result") == len(CATALOG)


class TestResume:
    """Satellite (c): a truncated store resumes by skipping completed keys."""

    def test_resume_skips_completed(self, tmp_path):
        path = tmp_path / "out.jsonl"
        with ResultStore(path) as store:
            CheckEngine().run(SMALL, store=store)
        with ResultStore(path) as store:
            report = CheckEngine().run(SMALL, store=store, resume=True)
        assert report.metrics.histories == 0
        assert report.metrics.skipped == len(CATALOG)

    def test_resume_after_truncation_completes_the_rest(self, tmp_path):
        path = tmp_path / "out.jsonl"
        with ResultStore(path) as store:
            full = CheckEngine().run(SMALL, store=store)
        # Kill the run retroactively: cut the file mid-way through a record.
        text = path.read_text()
        lines = text.splitlines(keepends=True)
        kept, cut = lines[:6], lines[6]
        path.write_text("".join(kept) + cut[: len(cut) // 2])
        done_before = ResultStore(path).completed_keys()
        assert 0 < len(done_before) < len(CATALOG)

        with ResultStore(path) as store:
            report = CheckEngine().run(SMALL, store=store, resume=True)
        assert report.metrics.skipped == len(done_before)
        assert report.metrics.histories == len(CATALOG) - len(done_before)
        # The store now holds every key, and the re-checked records match
        # the original run's verdicts exactly.
        store = ResultStore(path)
        assert store.completed_keys() == {f"catalog:{n}" for n in CATALOG}
        by_key = {r["key"]: r["models"] for r in store.results()}
        for record in full.results:
            assert by_key[record["key"]] == record["models"]

    def test_without_resume_reruns_everything(self, tmp_path):
        path = tmp_path / "out.jsonl"
        with ResultStore(path) as store:
            CheckEngine().run(SMALL, store=store)
            report = CheckEngine().run(SMALL, store=store, resume=False)
        assert report.metrics.histories == len(CATALOG)


class TestChunking:
    def test_explicit_chunk_size(self):
        engine = CheckEngine(chunk_size=3)
        chunks = engine._chunks([("k", {}, ("SC",))] * 7)
        assert [len(c) for c in chunks] == [3, 3, 1]

    def test_empty_payloads(self):
        report = CheckEngine().run(
            SweepSpec(source="random", models=("SC",), count=1, seed=0)
        )
        assert report.metrics.histories == 1
