"""Tests for the timeline renderer."""

from repro.litmus import parse_history
from repro.machines import SCMachine
from repro.programs import CsEnter, CsExit, RoundRobinScheduler, Write, run
from repro.viz import render_run, render_timeline


class TestRenderTimeline:
    def test_columns_per_processor(self):
        h = parse_history("p: w(x)1 | q: r(x)1")
        out = render_timeline(h)
        header = out.splitlines()[0]
        assert "p" in header and "q" in header

    def test_each_op_on_own_row(self):
        h = parse_history("p: w(x)1 r(y)0 | q: w(y)1 r(x)0")
        out = render_timeline(h)
        # Header + separator + 4 operation rows.
        assert len(out.splitlines()) == 6

    def test_explicit_order_respected(self):
        h = parse_history("p: w(x)1 | q: r(x)1")
        order = [h.op("q", 0), h.op("p", 0)]
        lines = render_timeline(h, order).splitlines()
        assert "r(x)1" in lines[2] and "w(x)1" in lines[3]

    def test_labeled_and_rmw_cells(self):
        h = parse_history("p: w*(s)1 u(l)0->1")
        out = render_timeline(h)
        assert "w*(s)1" in out and "u(l)0->1" in out


class TestRenderRun:
    def test_marks_cs_events_and_violation(self):
        def thread(ops):
            def factory():
                def gen():
                    for op in ops:
                        yield op
                return gen()
            return factory

        m = SCMachine(("p", "q"))
        result = run(
            m,
            {
                "p": thread([Write("x", 1), CsEnter(), CsExit()]),
                "q": thread([CsEnter(), CsExit()]),
            },
            RoundRobinScheduler(),
        )
        out = render_run(result)
        assert "critical-section events" in out
        assert "enter" in out and "exit" in out
        if result.mutex_violation:
            assert "MUTUAL EXCLUSION VIOLATED" in out

    def test_run_without_cs_has_no_cs_section(self):
        def factory():
            def gen():
                yield Write("x", 1)
            return gen()

        m = SCMachine(("p",))
        result = run(m, {"p": factory}, RoundRobinScheduler())
        assert "critical-section" not in render_run(result)
