"""Tests for ASCII and DOT rendering."""


from repro.checking import check_tso
from repro.lattice import paper_hasse
from repro.litmus import parse_history
from repro.orders import causal_relation, po_relation
from repro.viz import (
    lattice_to_dot,
    relation_to_dot,
    render_history,
    render_lattice,
    render_verdicts,
    render_views,
)


class TestAsciiHistory:
    def test_rows_per_processor(self):
        h = parse_history("p: w(x)1 | q: r(x)1")
        out = render_history(h, title="demo")
        assert out.startswith("demo")
        assert "p: w(x)1" in out and "q: r(x)1" in out


class TestAsciiViews:
    def test_views_in_paper_notation(self, fig1):
        res = check_tso(fig1)
        out = render_views(res.views)
        assert "S_{p+w}" in out and "S_{q+w}" in out


class TestAsciiLattice:
    def test_layers_present(self):
        out = render_lattice(paper_hasse())
        assert out.splitlines()[0] == "strongest"
        assert out.splitlines()[-1] == "weakest"
        assert "SC" in out and "PRAM" in out

    def test_edges_rendered(self):
        out = render_lattice(paper_hasse())
        assert "SC->TSO" in out


class TestAsciiVerdicts:
    def test_flags_divergence(self):
        out = render_verdicts("t", {"SC": True}, {"SC": False})
        assert "SC=Y(!)" in out

    def test_plain_verdicts(self):
        out = render_verdicts("t", {"SC": True, "TSO": False})
        assert "SC=Y" in out and "TSO=N" in out


class TestDot:
    def test_relation_dot_is_parseable_shape(self):
        h = parse_history("p: w(x)1 w(y)2")
        dot = relation_to_dot(po_relation(h))
        assert dot.startswith("digraph") and dot.rstrip().endswith("}")
        assert "->" in dot

    def test_transitive_reduction_applied(self):
        h = parse_history("p: w(x)1 w(y)2 w(z)3")
        dot = relation_to_dot(po_relation(h))
        # Closure has 3 edges; reduction keeps the 2 chain edges.
        assert dot.count("->") == 2

    def test_reduction_can_be_disabled(self):
        h = parse_history("p: w(x)1 w(y)2 w(z)3")
        dot = relation_to_dot(po_relation(h), transitive_reduce=False)
        assert dot.count("->") == 3

    def test_cyclic_relation_rendered_unreduced(self):
        h = parse_history("p: w(x)1 | q: r(x)1 w(x)2")
        rel = causal_relation(h)
        rel.add(h.op("q", 1), h.op("p", 0))  # force a cycle
        dot = relation_to_dot(rel)
        assert "digraph" in dot

    def test_lattice_dot(self):
        dot = lattice_to_dot(paper_hasse())
        assert '"SC" -> "TSO"' in dot
