"""Tests for the three characterization parameters."""

import pytest

from repro.litmus import parse_history
from repro.orders import unique_reads_from
from repro.spec import OperationSet, PO, PPO, CAUSAL, SEMI_CAUSAL
from repro.spec.parameters import PO_LOC


class TestOperationSet:
    def test_all_remote_members(self):
        h = parse_history("p: w(x)1 | q: r(x)1 w(y)2")
        members = OperationSet.ALL_REMOTE.members(h, "p")
        assert len(members) == 2  # q's read and write both included

    def test_remote_writes_members(self):
        h = parse_history("p: w(x)1 | q: r(x)1 w(y)2")
        members = OperationSet.REMOTE_WRITES.members(h, "p")
        assert len(members) == 1 and members[0].is_write

    def test_view_contents_include_own_ops(self):
        h = parse_history("p: w(x)1 r(y)0 | q: w(y)2")
        contents = OperationSet.REMOTE_WRITES.view_contents(h, "p")
        assert len(contents) == 3
        own = [op for op in contents if op.proc == "p"]
        assert len(own) == 2

    def test_rmw_counts_as_write_for_views(self):
        h = parse_history("p: w(x)1 | q: u(l)0->1")
        members = OperationSet.REMOTE_WRITES.members(h, "p")
        assert len(members) == 1  # the RMW appears in other views


class TestOrderingRules:
    def test_po_builds_program_order(self):
        h = parse_history("p: w(x)1 r(y)0")
        rel = PO.build(h, {}, None)
        assert rel.orders(h.op("p", 0), h.op("p", 1))

    def test_ppo_drops_write_read(self):
        h = parse_history("p: w(x)1 r(y)0")
        rel = PPO.build(h, {}, None)
        assert not rel.orders(h.op("p", 0), h.op("p", 1))

    def test_po_loc_same_location_only(self):
        h = parse_history("p: w(x)1 r(x)1 r(y)0")
        rel = PO_LOC.build(h, {}, None)
        assert rel.orders(h.op("p", 0), h.op("p", 1))
        assert not rel.orders(h.op("p", 1), h.op("p", 2))

    def test_causal_includes_wb(self):
        h = parse_history("p: w(x)1 | q: r(x)1")
        rel = CAUSAL.build(h, unique_reads_from(h), None)
        assert rel.orders(h.op("p", 0), h.op("q", 0))

    def test_sem_requires_coherence(self):
        h = parse_history("p: w(x)1")
        with pytest.raises(ValueError):
            SEMI_CAUSAL.build(h, {}, None)

    def test_needs_coherence_flags(self):
        assert SEMI_CAUSAL.needs_coherence
        assert not PO.needs_coherence
        assert not PPO.needs_coherence
        assert not CAUSAL.needs_coherence
