"""Tests for the model-spec registry and spec validation."""

import pytest

from repro.core import SpecError
from repro.spec import (
    ALL_SPECS,
    CAUSAL,
    LabeledDiscipline,
    MemoryModelSpec,
    MutualConsistency,
    OperationSet,
    PO,
    get_spec,
    spec_names,
)


class TestRegistry:
    def test_all_paper_models_present(self):
        names = set(spec_names())
        for expected in ("SC", "TSO", "PC", "PRAM", "Causal", "RC_sc", "RC_pc"):
            assert expected in names

    def test_lookup_case_insensitive(self):
        assert get_spec("tso").name == "TSO"
        assert get_spec("RC_SC").name == "RC_sc"

    def test_unknown_name_raises(self):
        with pytest.raises(SpecError):
            get_spec("nonsense")

    def test_all_specs_have_descriptions(self):
        for spec in ALL_SPECS:
            assert spec.description, f"{spec.name} lacks provenance text"

    def test_spec_parameters_match_the_paper(self):
        sc = get_spec("SC")
        assert sc.operation_set is OperationSet.ALL_REMOTE
        assert sc.mutual_consistency is MutualConsistency.IDENTICAL
        tso = get_spec("TSO")
        assert tso.mutual_consistency is MutualConsistency.TOTAL_WRITE_ORDER
        assert tso.ordering.name == "ppo"
        pram = get_spec("PRAM")
        assert pram.mutual_consistency is MutualConsistency.NONE
        assert pram.ordering.name == "po"
        causal = get_spec("Causal")
        assert causal.ordering.name == "causal"
        pc = get_spec("PC")
        assert pc.mutual_consistency is MutualConsistency.COHERENCE
        assert pc.ordering.name == "sem"

    def test_rc_specs(self):
        rc_sc = get_spec("RC_sc")
        assert rc_sc.labeled_discipline is LabeledDiscipline.SC
        assert rc_sc.bracketing and rc_sc.is_release_consistent
        rc_pc = get_spec("RC_pc")
        assert rc_pc.labeled_discipline is LabeledDiscipline.PC

    def test_str_rendering(self):
        assert "δ_p" in str(get_spec("TSO"))
        assert "labeled=sc" in str(get_spec("RC_sc"))


class TestSpecValidation:
    def test_bracketing_requires_discipline(self):
        with pytest.raises(SpecError):
            MemoryModelSpec(
                name="bad",
                operation_set=OperationSet.REMOTE_WRITES,
                mutual_consistency=MutualConsistency.NONE,
                ordering=PO,
                bracketing=True,
            )

    def test_identical_views_require_all_remote(self):
        with pytest.raises(SpecError):
            MemoryModelSpec(
                name="bad",
                operation_set=OperationSet.REMOTE_WRITES,
                mutual_consistency=MutualConsistency.IDENTICAL,
                ordering=PO,
            )

    def test_sem_requires_coherence_mutual(self):
        from repro.spec import SEMI_CAUSAL

        with pytest.raises(SpecError):
            MemoryModelSpec(
                name="bad",
                operation_set=OperationSet.REMOTE_WRITES,
                mutual_consistency=MutualConsistency.NONE,
                ordering=SEMI_CAUSAL,
            )

    def test_custom_recombination_allowed(self):
        # Section 7's recipe: causal + coherence is a valid new memory.
        spec = MemoryModelSpec(
            name="custom",
            operation_set=OperationSet.REMOTE_WRITES,
            mutual_consistency=MutualConsistency.COHERENCE,
            ordering=CAUSAL,
        )
        assert not spec.is_release_consistent


class TestModelZoo:
    """The session-guarantee and Partition Consistency families."""

    def test_zoo_members_present(self):
        names = set(spec_names())
        for expected in (
            "read-your-writes",
            "monotonic-reads",
            "monotonic-writes",
            "writes-follow-reads",
            "session-causal",
            "partition-2",
            "partition-3",
        ):
            assert expected in names

    def test_session_specs_have_no_mutual_consistency(self):
        for name in ("read-your-writes", "session-causal"):
            spec = get_spec(name)
            assert spec.mutual_consistency is MutualConsistency.NONE
            assert spec.ordering.name.startswith("session(")

    def test_partition_specs_carry_their_arity(self):
        for blocks in (2, 3):
            spec = get_spec(f"partition-{blocks}")
            assert spec.mutual_consistency is MutualConsistency.PARTITION
            assert spec.partition_blocks == blocks
            assert spec.ordering.name == f"po-block({blocks})"

    def test_cache_keys_pairwise_distinct(self):
        # Every parameter axis must be embedded in the cache key: two
        # registered specs sharing a key would silently alias each
        # other's cached verdicts.
        keys = {}
        for spec in ALL_SPECS:
            key = spec.cache_key
            assert key not in keys, f"{spec.name} aliases {keys[key]}"
            keys[key] = spec.name

    def test_cache_key_embeds_partition_arity(self):
        # partition-2 and partition-3 differ only on the blocks axis.
        assert get_spec("partition-2").cache_key != get_spec(
            "partition-3"
        ).cache_key

    def test_spec_names_ordering_is_stable(self):
        # spec_names() is the registry's presentation order: the paper's
        # models first, then Section 7 recombinations, then the zoo
        # growth — append-only, and deterministic across calls.
        names = spec_names()
        assert names == spec_names()
        assert names == tuple(spec.name for spec in ALL_SPECS)
        assert names.index("SC") < names.index("CoherentCausal")
        assert names.index("CoherentCausal") < names.index("read-your-writes")
        assert names.index("read-your-writes") < names.index("partition-2")

    def test_get_spec_suggests_near_misses(self):
        from repro.spec import suggest_names

        assert suggest_names("ryw") == ("read-your-writes",)
        with pytest.raises(SpecError, match="did you mean read-your-writes"):
            get_spec("ryw")
        with pytest.raises(SpecError, match="did you mean"):
            get_spec("monotonic")
        # Hopeless queries still list the registry without a guess.
        with pytest.raises(SpecError, match="known: "):
            get_spec("zzzzqqq")
