"""Tests for the model-spec registry and spec validation."""

import pytest

from repro.core import SpecError
from repro.spec import (
    ALL_SPECS,
    CAUSAL,
    LabeledDiscipline,
    MemoryModelSpec,
    MutualConsistency,
    OperationSet,
    PO,
    get_spec,
    spec_names,
)


class TestRegistry:
    def test_all_paper_models_present(self):
        names = set(spec_names())
        for expected in ("SC", "TSO", "PC", "PRAM", "Causal", "RC_sc", "RC_pc"):
            assert expected in names

    def test_lookup_case_insensitive(self):
        assert get_spec("tso").name == "TSO"
        assert get_spec("RC_SC").name == "RC_sc"

    def test_unknown_name_raises(self):
        with pytest.raises(SpecError):
            get_spec("nonsense")

    def test_all_specs_have_descriptions(self):
        for spec in ALL_SPECS:
            assert spec.description, f"{spec.name} lacks provenance text"

    def test_spec_parameters_match_the_paper(self):
        sc = get_spec("SC")
        assert sc.operation_set is OperationSet.ALL_REMOTE
        assert sc.mutual_consistency is MutualConsistency.IDENTICAL
        tso = get_spec("TSO")
        assert tso.mutual_consistency is MutualConsistency.TOTAL_WRITE_ORDER
        assert tso.ordering.name == "ppo"
        pram = get_spec("PRAM")
        assert pram.mutual_consistency is MutualConsistency.NONE
        assert pram.ordering.name == "po"
        causal = get_spec("Causal")
        assert causal.ordering.name == "causal"
        pc = get_spec("PC")
        assert pc.mutual_consistency is MutualConsistency.COHERENCE
        assert pc.ordering.name == "sem"

    def test_rc_specs(self):
        rc_sc = get_spec("RC_sc")
        assert rc_sc.labeled_discipline is LabeledDiscipline.SC
        assert rc_sc.bracketing and rc_sc.is_release_consistent
        rc_pc = get_spec("RC_pc")
        assert rc_pc.labeled_discipline is LabeledDiscipline.PC

    def test_str_rendering(self):
        assert "δ_p" in str(get_spec("TSO"))
        assert "labeled=sc" in str(get_spec("RC_sc"))


class TestSpecValidation:
    def test_bracketing_requires_discipline(self):
        with pytest.raises(SpecError):
            MemoryModelSpec(
                name="bad",
                operation_set=OperationSet.REMOTE_WRITES,
                mutual_consistency=MutualConsistency.NONE,
                ordering=PO,
                bracketing=True,
            )

    def test_identical_views_require_all_remote(self):
        with pytest.raises(SpecError):
            MemoryModelSpec(
                name="bad",
                operation_set=OperationSet.REMOTE_WRITES,
                mutual_consistency=MutualConsistency.IDENTICAL,
                ordering=PO,
            )

    def test_sem_requires_coherence_mutual(self):
        from repro.spec import SEMI_CAUSAL

        with pytest.raises(SpecError):
            MemoryModelSpec(
                name="bad",
                operation_set=OperationSet.REMOTE_WRITES,
                mutual_consistency=MutualConsistency.NONE,
                ordering=SEMI_CAUSAL,
            )

    def test_custom_recombination_allowed(self):
        # Section 7's recipe: causal + coherence is a valid new memory.
        spec = MemoryModelSpec(
            name="custom",
            operation_set=OperationSet.REMOTE_WRITES,
            mutual_consistency=MutualConsistency.COHERENCE,
            ordering=CAUSAL,
        )
        assert not spec.is_release_consistent
