"""The engine agrees exactly with direct check() — the acceptance gate.

Every (catalog history × registered model) pair is decided twice: once by
a direct :func:`repro.checking.check` call (no cache, no engine) and once
through the batch engine.  Any divergence would mean the relation cache or
the worker protocol changed a verdict, which is the one thing the engine
is never allowed to do.
"""

from repro.checking import check, model_names
from repro.engine import CheckEngine, SweepSpec
from repro.litmus import CATALOG


def _direct_verdicts():
    return {
        f"catalog:{name}": {
            model: check(test.history, model).allowed for model in model_names()
        }
        for name, test in CATALOG.items()
    }


def test_engine_matches_direct_check_for_every_catalog_pair():
    direct = _direct_verdicts()
    report = CheckEngine(jobs=1).run(SweepSpec(source="catalog", models=("all",)))
    engine = {r["key"]: r["models"] for r in report.results}
    assert engine == direct


def test_parallel_engine_matches_direct_check():
    direct = _direct_verdicts()
    report = CheckEngine(jobs=4).run(SweepSpec(source="catalog", models=("all",)))
    engine = {r["key"]: r["models"] for r in report.results}
    assert engine == direct


def test_engine_verdicts_match_catalog_expectations():
    # The catalog's expected verdicts are the paper's own figures; the
    # engine must reproduce them model-for-model.
    report = CheckEngine().run(SweepSpec(source="catalog", models=("all",)))
    by_key = {r["key"]: r["models"] for r in report.results}
    for name, test in CATALOG.items():
        got = by_key[f"catalog:{name}"]
        for model, expected in test.expected.items():
            assert got[model] == expected, (name, model)
