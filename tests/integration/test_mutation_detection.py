"""Mutation testing: the checkers catch *broken* machine implementations.

The machine-soundness suite shows correct machines never produce
model-violating traces; this file shows the converse discriminating
power: machines with deliberately injected protocol bugs (LIFO channels,
dropped FIFO gating, cross-channel swaps) produce traces the checkers
*reject* — the framework works as a verification harness for memory
system implementations, which is exactly the use the paper's formal
characterizations were meant to enable.
"""


import numpy as np

from repro.analysis import machine_history
from repro.checking import check
from repro.core.errors import MachineError
from repro.machines import PRAMMachine, TSOMachine
from repro.machines.causal_machine import CausalMachine


class LIFOBufferTSOMachine(TSOMachine):
    """Bug injection: the store buffer drains newest-first (LIFO)."""

    def fire(self, key):
        match key:
            case ("drain", proc) if self._buffers.get(proc):
                location, value = self._buffers[proc].pop()  # LIFO!
                self._memory[location] = value
            case _:
                raise MachineError(f"{self.name}: event {key!r} is not enabled")


class LIFOChannelPRAMMachine(PRAMMachine):
    """Bug injection: update channels deliver newest-first (LIFO)."""

    def fire(self, key):
        match key:
            case ("deliver", src, dst) if self._channels.get((src, dst)):
                location, value = self._channels[(src, dst)].pop()  # LIFO!
                self._replicas[dst][location] = value
            case _:
                raise MachineError(f"{self.name}: event {key!r} is not enabled")


class UngatedCausalMachine(CausalMachine):
    """Bug injection: causal delivery gating disabled (any pending applies)."""

    def _ready(self, dst, entry) -> bool:
        return True


def _hunt_violation(machine_factory, model: str, seeds: int = 300) -> bool:
    """True when some random program/schedule yields a model-violating trace."""
    rng = np.random.default_rng(97)
    for _ in range(seeds):
        machine = machine_factory()
        h = machine_history(machine, rng, ops_per_proc=4, p_write=0.6)
        if not check(h, model).allowed:
            return True
    return False


class TestInjectedBugsAreCaught:
    def test_lifo_store_buffer_breaks_tso(self):
        assert _hunt_violation(
            lambda: LIFOBufferTSOMachine(("p", "q")), "TSO-axiomatic"
        ), "LIFO drains should produce non-TSO traces"

    def test_lifo_channels_break_pram(self):
        assert _hunt_violation(
            lambda: LIFOChannelPRAMMachine(("p", "q")), "PRAM"
        ), "LIFO delivery should produce non-PRAM traces"

    def test_ungated_delivery_breaks_causality(self):
        assert _hunt_violation(
            lambda: UngatedCausalMachine(("p", "q", "r")), "Causal"
        ), "removing the vector-clock gate should produce non-causal traces"


class TestInjectedBugsRespectWeakerModels:
    def test_lifo_pram_still_slow(self):
        # LIFO channels reorder one writer's different-location updates but
        # a *single* writer's same-location updates too — so even slow
        # memory should catch it eventually; spot-check that violations
        # against PRAM vastly outnumber any against Slow legality... in
        # fact a LIFO channel breaks per-writer-per-location order, which
        # Slow forbids, so Slow catches it as well.
        assert _hunt_violation(
            lambda: LIFOChannelPRAMMachine(("p", "q")), "Slow"
        )

    def test_ungated_causal_still_pram(self):
        # Dropping causal gating but keeping per-origin FIFO (our
        # readiness ignored, but entries are appended in order and
        # applied... in arbitrary order) — traces may violate PRAM too;
        # the point here is the *direction*: every trace still satisfies
        # the weakest model with no per-writer guarantees beyond
        # legality, i.e. unlabeled Hybrid.
        rng = np.random.default_rng(11)
        for _ in range(40):
            machine = UngatedCausalMachine(("p", "q"))
            h = machine_history(machine, rng, ops_per_proc=3)
            assert check(h, "Hybrid").allowed


class TestValueCorruptionIsCaught:
    def test_corrupted_read_rejected_or_reattributed(self):
        """Flipping a read's value usually breaks every model; it must
        never crash a checker, and an SC trace's corruption is caught
        whenever the corrupted value is not independently explainable."""
        from repro.core.history import ProcessorHistory, SystemHistory
        from repro.core.operation import Operation
        from repro.machines import SCMachine

        rng = np.random.default_rng(13)
        caught = total = 0
        for _ in range(30):
            machine = SCMachine(("p", "q"))
            h = machine_history(machine, rng, ops_per_proc=4, p_write=0.5)
            reads = [op for op in h.operations if op.is_read]
            if not reads:
                continue
            victim = reads[int(rng.integers(len(reads)))]
            corrupted = SystemHistory(
                ProcessorHistory(
                    proc,
                    [
                        Operation(
                            proc=op.proc,
                            index=op.index,
                            kind=op.kind,
                            location=op.location,
                            value=op.value + 1000 if op.uid == victim.uid else op.value,
                            read_value=op.read_value,
                            labeled=op.labeled,
                        )
                        for op in h.ops_of(proc)
                    ],
                )
                for proc in h.procs
            )
            total += 1
            result = check(corrupted, "SC")
            if not result.allowed:
                caught += 1
                assert "never written" in result.reason or result.reason
        assert total > 0 and caught == total  # +1000 is never explainable
