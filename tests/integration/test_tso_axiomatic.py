"""Integration: the paper's TSO vs axiomatic (hardware) TSO (E8).

Section 3.2 claims the view characterization "is equivalent to the
axiomatic definition" of Sindhu et al.  Measured result: the paper's TSO
is *contained in* axiomatic TSO but strictly stronger — the two diverge
exactly on store-forwarding shapes, where a processor reads its own write
before it is globally visible.  The paper's ``->ppo`` keeps the
same-location write→read edge that forwarding breaks.
"""

import numpy as np

from repro.analysis import machine_history, random_history
from repro.checking import check_axiomatic_tso, check_tso
from repro.lattice import HistorySpace, canonical_key, enumerate_histories
from repro.litmus import CATALOG, parse_history
from repro.machines import TSOMachine


class TestContainment:
    def test_paper_tso_contained_in_axiomatic_on_2x2_space(self):
        space = HistorySpace(procs=2, ops_per_proc=2)
        seen = set()
        for h in enumerate_histories(space):
            k = canonical_key(h)
            if k in seen:
                continue
            seen.add(k)
            if check_tso(h).allowed:
                assert check_axiomatic_tso(h).allowed, f"containment broken:\n{h}"

    def test_paper_tso_contained_on_random_histories(self):
        rng = np.random.default_rng(23)
        for _ in range(50):
            h = random_history(rng, procs=2, ops_per_proc=3)
            if check_tso(h).allowed:
                assert check_axiomatic_tso(h).allowed, f"containment broken:\n{h}"


class TestDivergence:
    def test_sb_fwd_separates_the_models(self):
        h = CATALOG["sb-fwd"].history
        assert check_axiomatic_tso(h).allowed
        assert not check_tso(h).allowed

    def test_minimal_forwarding_separator(self):
        # The smallest shape: p forwards its own buffered store while q
        # still sees the old memory — combined with the mirror image, the
        # paper's shared write order cannot exist.
        h = parse_history("p: w(x)1 r(x)1 r(y)0 | q: w(y)1 r(y)1 r(x)0")
        assert check_axiomatic_tso(h).allowed
        assert not check_tso(h).allowed

    def test_tso_machine_realizes_the_divergent_outcome(self):
        # The operational machine (the paper's own Section 3.2 description,
        # buffers with forwarding) reaches the outcome its view model bans.
        m = TSOMachine(("p", "q"))
        m.write("p", "x", 1)
        m.write("q", "y", 1)
        assert m.read("p", "x") == 1   # forwarded
        assert m.read("p", "y") == 0
        assert m.read("q", "y") == 1   # forwarded
        assert m.read("q", "x") == 0
        h = m.history()
        assert check_axiomatic_tso(h).allowed
        assert not check_tso(h).allowed

    def test_agreement_without_forwarding_shapes(self):
        """On histories with no same-location w->r program pattern the two
        models agree (over the canonical 2x2 space)."""
        space = HistorySpace(procs=2, ops_per_proc=2)
        seen = set()
        for h in enumerate_histories(space):
            k = canonical_key(h)
            if k in seen:
                continue
            seen.add(k)
            if _has_forwarding_shape(h):
                continue
            assert check_tso(h).allowed == check_axiomatic_tso(h).allowed, str(h)


class TestMachineSoundness:
    def test_tso_machine_traces_always_axiomatic(self):
        rng = np.random.default_rng(29)
        for _ in range(40):
            m = TSOMachine(("p", "q"))
            h = machine_history(m, rng, ops_per_proc=3)
            assert check_axiomatic_tso(h).allowed, f"machine broke the axioms:\n{h}"


def _has_forwarding_shape(history) -> bool:
    """A write followed (in program order) by a read of the same location."""
    for proc in history.procs:
        ops = history.ops_of(proc)
        for i, a in enumerate(ops):
            if not a.is_write:
                continue
            for b in ops[i + 1:]:
                if b.is_read and b.location == a.location:
                    return True
    return False
