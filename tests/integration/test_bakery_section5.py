"""Integration: the Section 5 Bakery experiment end to end (E6).

Three layers of the claim, all checked:

1. declarative — the paper's violating history is allowed by RC_pc and
   rejected by RC_sc;
2. operational — the RC_pc machine reaches a mutual-exclusion violation
   while the RC_sc machine never does;
3. closing the loop — traces the RC_pc machine produces when it violates
   are themselves RC_pc-allowed histories that RC_sc rejects.
"""

import pytest

from repro.checking import check_rc_pc, check_rc_sc
from repro.machines import RCMachine
from repro.programs import DelayDeliveriesScheduler, RandomScheduler, run
from repro.programs.mutex import bakery_program


@pytest.fixture(scope="module")
def violating_run():
    # cs_body=True matters: without the ordinary operations inside the
    # critical section, the violating *sync* history alone is SC-able
    # ("p0's whole protocol, then p1's" — the number/choosing resets
    # restore every location to 0, hiding the overlap).  The violation is
    # only observable through the data the critical section protects.
    result = run(
        RCMachine(("p0", "p1"), labeled_mode="pc"),
        bakery_program(2, cs_body=True),
        DelayDeliveriesScheduler(),
        max_steps=4000,
    )
    assert result.mutex_violation
    return result


class TestDeclarative:
    def test_paper_history_distinguishes_models(self, bakery_violation):
        assert check_rc_pc(bakery_violation).allowed
        assert not check_rc_sc(bakery_violation).allowed

    def test_rc_pc_witness_orders_remote_writes_late(self, bakery_violation):
        # The paper's intuition: "each processor can order the writes of
        # the other after all of its own operations."
        res = check_rc_pc(bakery_violation)
        for proc in res.views:
            view = res.views[proc]
            own_last_sync = max(
                (view.position(op) for op in view if op.proc == proc and op.labeled),
            )
            remote_sync = [
                view.position(op) for op in view if op.proc != proc and op.labeled
            ]
            assert all(pos > own_last_sync for pos in remote_sync)


class TestOperational:
    def test_rc_sc_machine_never_violates(self):
        for seed in range(150):
            result = run(
                RCMachine(("p0", "p1"), labeled_mode="sc"),
                bakery_program(2),
                RandomScheduler(seed),
                max_steps=4000,
            )
            assert not result.mutex_violation, f"seed {seed}"

    def test_rc_pc_machine_violates_adversarially(self, violating_run):
        assert violating_run.mutex_violation
        assert violating_run.completed

    def test_violating_run_shape_matches_paper(self, violating_run):
        # Both processors read number[other] = 0 in the waiting loop.
        h = violating_run.history
        for proc, other in (("p0", 1), ("p1", 0)):
            reads = [
                op
                for op in h.ops_of(proc)
                if op.is_read and op.location == f"number[{other}]"
            ]
            assert reads and all(op.value == 0 for op in reads)


class TestLoopClosed:
    def test_violating_trace_is_rc_pc_but_not_rc_sc(self, violating_run):
        h = violating_run.history
        assert check_rc_pc(h).allowed, "machine produced a non-RC_pc trace"
        assert not check_rc_sc(h).allowed, (
            "a mutual-exclusion-violating Bakery trace cannot be RC_sc "
            "(Gibbons-Merritt-Gharachorloo: properly-labeled SC-correct "
            "programs stay correct on RC_sc)"
        )
