"""Regression lock: the headline numbers recorded in EXPERIMENTS.md.

These constants are measured facts about the reproduction (region sizes,
canonical-space cardinalities, the divergence inventory).  If a checker
or the enumeration changes behavior, this file pins down exactly which
recorded number moved.
"""

import pytest

from repro.checking import check
from repro.lattice import (
    HistorySpace,
    canonical_key,
    classify_histories,
    enumerate_histories,
    space_size,
)
from repro.litmus import CATALOG


@pytest.fixture(scope="module")
def canonical_2x2():
    space = HistorySpace(procs=2, ops_per_proc=2)
    seen, hs = set(), []
    for h in enumerate_histories(space):
        k = canonical_key(h)
        if k not in seen:
            seen.add(k)
            hs.append(h)
    return hs


class TestSpaceCardinalities:
    def test_raw_2x2_size(self):
        assert space_size(HistorySpace(procs=2, ops_per_proc=2)) == 792

    def test_canonical_2x2_size(self, canonical_2x2):
        assert len(canonical_2x2) == 210

    def test_raw_2x3_size(self):
        assert space_size(HistorySpace(procs=2, ops_per_proc=3)) == 48388


class TestRegionSizes:
    def test_2x2_counts_match_experiments_md(self, canonical_2x2):
        result = classify_histories(
            canonical_2x2, ("SC", "TSO", "PC", "Causal", "PRAM")
        )
        assert result.counts() == {
            "SC": 140,
            "TSO": 141,
            "PC": 142,
            "Causal": 142,
            "PRAM": 144,
        }

    def test_extension_model_counts(self, canonical_2x2):
        result = classify_histories(
            canonical_2x2, ("Coherence", "CoherentCausal", "PC-G", "Hybrid", "Slow")
        )
        assert result.counts() == {
            "Coherence": 143,
            "CoherentCausal": 141,
            "PC-G": 142,
            "Hybrid": 210,  # unlabeled hybrid constrains nothing but legality
            "Slow": 145,
        }


class TestDivergenceInventory:
    def test_the_one_tso_divergence(self):
        """Exactly the forwarding divergence, nothing else, on the catalog."""
        diverging = []
        for name, t in CATALOG.items():
            h = t.history
            if any(op.kind.value == "u" for op in h.operations):
                continue
            view = check(h, "TSO").allowed
            axio = check(h, "TSO-axiomatic").allowed
            if view != axio:
                diverging.append(name)
        assert diverging == ["sb-fwd"]

    def test_catalog_size(self):
        # Grows only deliberately: each entry is a documented claim.
        assert len(CATALOG) == 17
