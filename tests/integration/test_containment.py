"""Integration: Section 4's containment theorems, checked empirically (E7).

The paper proves TSO ⊆ PC by view reuse; here every Figure 5 containment
is swept over the catalog, random structural histories, and machine-
generated traces, with the machine hierarchy thrown in (an SC machine
trace must satisfy every weaker model too).
"""

import numpy as np
import pytest

from repro.analysis import machine_history, random_history
from repro.checking import check, classify
from repro.lattice import FIGURE5_EDGES
from repro.litmus import CATALOG
from repro.machines import SCMachine

ALL_EDGES = FIGURE5_EDGES + (
    ("SC", "Coherence"),
    ("TSO", "Coherence"),
    ("PC", "Coherence"),
    ("SC", "RC_sc"),
    ("RC_sc", "RC_pc"),
    ("SC", "CoherentCausal"),
    ("CoherentCausal", "Causal"),
    ("CoherentCausal", "Coherence"),
)


def assert_containments(history, edges=ALL_EDGES):
    verdicts = {}

    def verdict(model):
        if model not in verdicts:
            verdicts[model] = check(history, model).allowed
        return verdicts[model]

    for stronger, weaker in edges:
        if verdict(stronger):
            assert verdict(weaker), (
                f"{stronger} ⊆ {weaker} violated by:\n{history}"
            )


class TestOnCatalog:
    @pytest.mark.parametrize("name", sorted(CATALOG))
    def test_containments_hold(self, name):
        assert_containments(CATALOG[name].history)


class TestOnRandomHistories:
    def test_containments_hold_2proc(self):
        rng = np.random.default_rng(11)
        for _ in range(40):
            assert_containments(random_history(rng, procs=2, ops_per_proc=3))

    def test_containments_hold_3proc(self):
        rng = np.random.default_rng(13)
        for _ in range(20):
            assert_containments(
                random_history(rng, procs=3, ops_per_proc=2, locations=("x", "y"))
            )


class TestOnMachineTraces:
    def test_sc_traces_satisfy_every_model(self):
        rng = np.random.default_rng(17)
        models = ("SC", "TSO", "PC", "Causal", "PRAM", "Coherence", "RC_sc", "RC_pc")
        for _ in range(15):
            m = SCMachine(("p0", "p1"))
            h = machine_history(m, rng, ops_per_proc=3)
            verdicts = classify(h, models)
            assert all(verdicts.values()), f"SC trace rejected somewhere: {verdicts}\n{h}"


class TestPaperProofShape:
    def test_tso_views_reusable_for_pc(self, fig1):
        """Section 4's proof: the TSO witness views satisfy PC's needs."""
        from repro.checking import check_pc, check_tso
        from repro.orders import sem_relation, unique_reads_from

        tso = check_tso(fig1)
        assert tso.allowed
        # Mutual consistency: per-location order shared (trivially, since
        # the full write order is shared).
        rf = unique_reads_from(fig1)
        coherence = {
            loc: tuple(
                op for op in tso.views["p"].writes_only if op.location == loc
            )
            for loc in fig1.locations
        }
        sem = sem_relation(fig1, rf, coherence)
        for proc, view in tso.views.items():
            for a, b in sem.pairs():
                if a in view and b in view:
                    assert view.orders(a, b), (
                        f"TSO view for {proc} breaks sem edge {a} -> {b}"
                    )
        assert check_pc(fig1).allowed
