"""Integration: the paper's Figures 1-4 end to end (experiments E1-E4).

Each figure is checked three ways where applicable: the checker verdicts
match the paper, the witness views match the structure the paper prints,
and the corresponding operational machine can actually *produce* the
figure's outcome.
"""

from repro.checking import check, check_pram, check_tso
from repro.machines import PRAMMachine, TSOMachine
from repro.programs import Read, Write, explore


def iter_thread(ops):
    for op in ops:
        yield op


class TestFigure1:
    """SB: allowed by TSO, not by SC."""

    def test_verdicts(self, fig1):
        assert not check(fig1, "SC").allowed
        assert check(fig1, "TSO").allowed

    def test_witness_views_match_paper_structure(self, fig1):
        # The paper's views: S_{p+w}: r_p(y)0 w_p(x)1 w_q(y)1 (reads first,
        # shared write order).  Our witness need not be identical but must
        # put the read before the remote write and share the write order.
        res = check_tso(fig1)
        for proc in ("p", "q"):
            view = res.views[proc]
            own_read = next(op for op in view if op.proc == proc and op.is_read)
            remote_write = next(op for op in view if op.proc != proc)
            assert view.orders(own_read, remote_write)
        assert [op.uid for op in res.views["p"].writes_only] == [
            op.uid for op in res.views["q"].writes_only
        ]

    def test_tso_machine_produces_it(self, fig1):
        def setup():
            machine = TSOMachine(("p", "q"))
            return machine, {
                "p": lambda: iter_thread([Write("x", 1), Read("y")]),
                "q": lambda: iter_thread([Write("y", 1), Read("x")]),
            }

        assert any(r.history == fig1 for r in explore(setup, max_steps=40))


class TestFigure2:
    """Allowed by PC, not by TSO."""

    def test_verdicts(self, fig2):
        assert check(fig2, "PC").allowed
        assert not check(fig2, "TSO").allowed

    def test_paper_explanation_holds(self, fig2):
        # The paper argues TSO fails because writes must be totally
        # ordered; confirm the reason cites the write order search.
        res = check_tso(fig2)
        assert not res.allowed
        assert "write order" in res.reason


class TestFigure3:
    """Allowed by PRAM, not by TSO."""

    def test_verdicts(self, fig3):
        assert check(fig3, "PRAM").allowed
        assert not check(fig3, "TSO").allowed

    def test_paper_views_reproduced(self, fig3):
        # The paper's S_{p+w} = w_p(x)1 r_p(x)1 w_q(x)2 r_p(x)2.
        res = check_pram(fig3)
        view_p = res.views["p"]
        assert [str(op) for op in view_p] == [
            "w_p(x)1",
            "r_p(x)1",
            "w_q(x)2",
            "r_p(x)2",
        ]

    def test_pram_machine_produces_it(self, fig3):
        def setup():
            machine = PRAMMachine(("p", "q"))
            return machine, {
                "p": lambda: iter_thread([Write("x", 1), Read("x"), Read("x")]),
                "q": lambda: iter_thread([Write("x", 2), Read("x"), Read("x")]),
            }

        assert any(r.history == fig3 for r in explore(setup, max_steps=60))


class TestFigure4:
    """Allowed by causal memory, not by TSO."""

    def test_verdicts(self, fig4):
        assert check(fig4, "Causal").allowed
        assert not check(fig4, "TSO").allowed

    def test_pram_weaker_variant(self, fig4):
        # The paper notes PRAM would allow r to read y=0 where causal
        # memory forces y=1 after observing z=1.
        from repro.litmus import parse_history

        weaker = parse_history(
            "p: w(x)1 w(y)1 | q: r(y)1 w(z)1 r(x)2 | r: w(x)2 r(x)1 r(z)1 r(y)0"
        )
        assert check(weaker, "PRAM").allowed
        assert not check(weaker, "Causal").allowed
