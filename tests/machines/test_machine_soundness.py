"""Operational ⊆ declarative: every machine trace satisfies its model.

This is the closing-the-loop experiment behind the paper's dual
definitions: the operational description (machines) must only produce
histories the view characterization (checkers) allows.  Random straight-
line programs under random schedules, plus exhaustive exploration of a
tiny fixed program.
"""

import numpy as np
import pytest

from repro.analysis import machine_history
from repro.checking import check
from repro.machines import MACHINE_MODEL_PAIRS, RCMachine
from repro.programs import Read, Write, explore

PROCS = ("p", "q")


@pytest.mark.parametrize("machine_cls,model", MACHINE_MODEL_PAIRS)
def test_random_traces_satisfy_model(machine_cls, model):
    rng = np.random.default_rng(hash(model) % 2**31)
    for _ in range(40):
        machine = machine_cls(PROCS)
        h = machine_history(machine, rng, ops_per_proc=3)
        res = check(h, model)
        assert res.allowed, f"{machine.name} produced a non-{model} trace:\n{h}"


@pytest.mark.parametrize("machine_cls,model", MACHINE_MODEL_PAIRS)
def test_exhaustive_sb_program_traces_satisfy_model(machine_cls, model):
    """Every schedule of the SB program yields a model-allowed trace."""

    def setup():
        machine = machine_cls(PROCS)
        threads = {
            "p": lambda: iter_thread([Write("x", 1), Read("y")]),
            "q": lambda: iter_thread([Write("y", 2), Read("x")]),
        }
        return machine, threads

    outcomes = set()
    for result in explore(setup, max_steps=60):
        assert result.completed
        h = result.history
        outcomes.add((h.op("p", 1).value, h.op("q", 1).value))
        assert check(h, model).allowed, f"{model} violated by:\n{h}"
    # The machine explored real nondeterminism.
    assert len(outcomes) >= 1


@pytest.mark.parametrize("mode,model", [("sc", "RC_sc"), ("pc", "RC_pc")])
def test_rc_machine_traces_satisfy_rc_models(mode, model):
    """RC machine traces (with labeled sync ops) satisfy the RC checkers."""

    def setup():
        machine = RCMachine(PROCS, labeled_mode=mode)
        threads = {
            "p": lambda: iter_thread(
                [Write("d", 1), Write("s", 1, labeled=True)]
            ),
            "q": lambda: iter_thread(
                [Read("s", labeled=True), Read("d")]
            ),
        }
        return machine, threads

    count = 0
    for result in explore(setup, max_steps=60):
        assert result.completed
        res = check(result.history, model)
        assert res.allowed, f"{model} violated by:\n{result.history}"
        count += 1
    assert count > 1  # nondeterminism explored


def iter_thread(ops):
    """Wrap a straight-line op list as a generator thread body."""
    for op in ops:
        yield op
