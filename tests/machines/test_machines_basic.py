"""Basic semantics tests for each operational machine."""

import pytest

from repro.core import MachineError
from repro.machines import (
    CausalMachine,
    CoherentMachine,
    PCMachine,
    PRAMMachine,
    RCMachine,
    SCMachine,
    TSOMachine,
)

PROCS = ("p", "q")


class TestSCMachine:
    def test_read_your_write_immediately_visible_to_all(self):
        m = SCMachine(PROCS)
        m.write("p", "x", 1)
        assert m.read("p", "x") == 1
        assert m.read("q", "x") == 1

    def test_no_internal_events(self):
        m = SCMachine(PROCS)
        m.write("p", "x", 1)
        assert m.internal_events() == [] and m.quiescent()

    def test_rmw(self):
        m = SCMachine(PROCS)
        assert m.rmw("p", "l", 1) == 0
        assert m.rmw("q", "l", 2) == 1

    def test_history_records_operations(self):
        m = SCMachine(PROCS)
        m.write("p", "x", 1)
        m.read("q", "x")
        h = m.history()
        assert len(h.operations) == 2
        assert h.op("q", 0).value == 1

    def test_unknown_proc_rejected(self):
        m = SCMachine(PROCS)
        with pytest.raises(MachineError):
            m.write("z", "x", 1)


class TestTSOMachine:
    def test_write_buffered_until_drain(self):
        m = TSOMachine(PROCS)
        m.write("p", "x", 1)
        assert m.read("q", "x") == 0  # not yet drained
        assert m.buffered("p") == (("x", 1),)
        m.fire(("drain", "p"))
        assert m.read("q", "x") == 1

    def test_forwarding_from_own_buffer(self):
        m = TSOMachine(PROCS)
        m.write("p", "x", 1)
        assert m.read("p", "x") == 1  # forwarded

    def test_forwarding_uses_youngest_store(self):
        m = TSOMachine(PROCS)
        m.write("p", "x", 1)
        m.write("p", "x", 2)
        assert m.read("p", "x") == 2

    def test_fifo_drain_order(self):
        m = TSOMachine(PROCS)
        m.write("p", "x", 1)
        m.write("p", "x", 2)
        m.fire(("drain", "p"))
        assert m.read("q", "x") == 1
        m.fire(("drain", "p"))
        assert m.read("q", "x") == 2

    def test_rmw_drains_buffer_first(self):
        m = TSOMachine(PROCS)
        m.write("p", "x", 1)
        assert m.rmw("p", "l", 1) == 0
        assert m.read("q", "x") == 1  # the earlier store committed

    def test_sb_outcome_reachable(self):
        m = TSOMachine(PROCS)
        m.write("p", "x", 1)
        m.write("q", "y", 1)
        assert m.read("p", "y") == 0
        assert m.read("q", "x") == 0

    def test_disabled_event_rejected(self):
        m = TSOMachine(PROCS)
        with pytest.raises(MachineError):
            m.fire(("drain", "p"))

    def test_drain_reaches_quiescence(self):
        m = TSOMachine(PROCS)
        m.write("p", "x", 1)
        m.write("q", "y", 2)
        m.drain()
        assert m.quiescent()
        assert m.read("p", "y") == 2


class TestPRAMMachine:
    def test_local_write_visible_locally_first(self):
        m = PRAMMachine(PROCS)
        m.write("p", "x", 1)
        assert m.read("p", "x") == 1
        assert m.read("q", "x") == 0
        m.fire(("deliver", "p", "q"))
        assert m.read("q", "x") == 1

    def test_channels_fifo(self):
        m = PRAMMachine(PROCS)
        m.write("p", "x", 1)
        m.write("p", "x", 2)
        m.fire(("deliver", "p", "q"))
        assert m.read("q", "x") == 1

    def test_cross_channel_reordering_allowed(self):
        m = PRAMMachine(("p", "q", "r"))
        m.write("p", "x", 1)
        m.write("q", "y", 2)
        # r may apply q's update before p's.
        m.fire(("deliver", "q", "r"))
        assert m.read("r", "y") == 2 and m.read("r", "x") == 0

    def test_fig3_outcome_reachable(self):
        m = PRAMMachine(PROCS)
        m.write("p", "x", 1)
        m.write("q", "x", 2)
        assert m.read("p", "x") == 1
        assert m.read("q", "x") == 2
        m.drain()
        # After exchange each sees the other's write last.
        assert m.read("p", "x") == 2
        assert m.read("q", "x") == 1


class TestCausalMachine:
    def test_fifo_from_origin(self):
        m = CausalMachine(PROCS)
        m.write("p", "x", 1)
        m.write("p", "y", 2)
        events = m.internal_events()
        # Only the first write is deliverable at q.
        assert events == [("apply", "q", "p", 1)]

    def test_causal_dependency_gates_delivery(self):
        m = CausalMachine(("p", "q", "r"))
        m.write("p", "x", 1)
        m.fire(("apply", "q", "p", 1))
        assert m.read("q", "x") == 1
        m.write("q", "y", 2)  # causally after p's write
        # r cannot apply q's write before p's.
        assert ("apply", "r", "q", 1) not in m.internal_events()
        m.fire(("apply", "r", "p", 1))
        assert ("apply", "r", "q", 1) in m.internal_events()

    def test_concurrent_writes_deliverable_either_order(self):
        m = CausalMachine(PROCS)
        m.write("p", "x", 1)
        m.write("q", "x", 2)
        assert ("apply", "q", "p", 1) in m.internal_events()
        assert ("apply", "p", "q", 1) in m.internal_events()

    def test_vector_clock_tracks_applied(self):
        m = CausalMachine(PROCS)
        m.write("p", "x", 1)
        assert m.vector_of("p")["p"] == 1
        assert m.vector_of("q")["p"] == 0
        m.fire(("apply", "q", "p", 1))
        assert m.vector_of("q")["p"] == 1


class TestPCMachine:
    def test_local_apply_immediate(self):
        m = PCMachine(PROCS)
        m.write("p", "x", 1)
        assert m.read("p", "x") == 1 and m.read("q", "x") == 0

    def test_stale_update_suppressed(self):
        m = PCMachine(PROCS)
        m.write("p", "x", 1)   # serial 1
        m.write("q", "x", 2)   # serial 2, applied at q
        m.fire(("deliver", "p", "q"))  # older serial arrives late
        assert m.read("q", "x") == 2  # not clobbered

    def test_newer_update_applies(self):
        m = PCMachine(PROCS)
        m.write("p", "x", 1)
        m.fire(("deliver", "p", "q"))
        assert m.read("q", "x") == 1

    def test_serial_counter(self):
        m = PCMachine(PROCS)
        m.write("p", "x", 1)
        m.write("q", "x", 2)
        assert m.serial_of("x") == 2 and m.serial_of("y") == 0


class TestCoherentMachine:
    def test_unordered_delivery(self):
        m = CoherentMachine(PROCS)
        m.write("p", "x", 1)
        m.write("p", "y", 2)
        events = m.internal_events()
        assert len(events) == 2  # both independently deliverable

    def test_rmw_atomic_at_serialization_point(self):
        m = CoherentMachine(PROCS)
        assert m.rmw("p", "l", 1) == 0
        assert m.rmw("q", "l", 2) == 1  # sees globally newest value


class TestRCMachine:
    def test_mode_validation(self):
        with pytest.raises(MachineError):
            RCMachine(PROCS, labeled_mode="weird")  # type: ignore[arg-type]

    def test_location_discipline_enforced(self):
        m = RCMachine(PROCS, labeled_mode="sc")
        m.write("p", "x", 1, labeled=False)
        with pytest.raises(MachineError):
            m.read("q", "x", labeled=True)

    def test_sc_mode_labeled_ops_atomic(self):
        m = RCMachine(PROCS, labeled_mode="sc")
        m.write("p", "s", 1, labeled=True)
        assert m.read("q", "s", labeled=True) == 1  # master copy, instant

    def test_pc_mode_labeled_ops_propagate_async(self):
        m = RCMachine(PROCS, labeled_mode="pc")
        m.write("p", "s", 1, labeled=True)
        assert m.read("q", "s", labeled=True) == 0  # stale until delivery
        m.fire(("sync", "p", "q"))
        assert m.read("q", "s", labeled=True) == 1

    def test_release_flushes_ordinary_writes_sc_mode(self):
        m = RCMachine(PROCS, labeled_mode="sc")
        m.write("p", "x", 1, labeled=False)
        assert m.read("q", "x", labeled=False) == 0
        m.write("p", "s", 1, labeled=True)  # release
        assert m.read("q", "x", labeled=False) == 1  # flushed

    def test_release_barrier_pc_mode(self):
        m = RCMachine(PROCS, labeled_mode="pc")
        m.write("p", "x", 1, labeled=False)
        m.write("p", "s", 1, labeled=True)  # release after one ordinary write
        # The sync delivery is gated until the ordinary update lands at q.
        assert not any(e[0] == "sync" for e in m.internal_events())
        ord_events = [e for e in m.internal_events() if e[0] == "ord"]
        m.fire(ord_events[0])
        assert any(e[0] == "sync" for e in m.internal_events())

    def test_sc_mode_rmw(self):
        m = RCMachine(PROCS, labeled_mode="sc")
        assert m.rmw("p", "l", 1, labeled=True) == 0
        assert m.rmw("q", "l", 2, labeled=True) == 1

    def test_pc_mode_rmw_atomic(self):
        m = RCMachine(PROCS, labeled_mode="pc")
        assert m.rmw("p", "l", 1, labeled=True) == 0
        assert m.rmw("q", "l", 2, labeled=True) == 1  # serialization point

    def test_ordinary_rmw_rejected(self):
        m = RCMachine(PROCS, labeled_mode="sc")
        with pytest.raises(MachineError):
            m.rmw("p", "d", 1, labeled=False)
