"""The no-forwarding TSO machine matches the *paper's* TSO exactly (E8).

With forwarding disabled, a processor never observes its own store before
the rest of the system can, which is precisely the constraint the paper's
``->ppo`` (same-location write→read edge) imposes.  Every trace of this
variant must satisfy the paper's view characterization — closing the E8
story: the paper's TSO is the store-buffer machine *without* forwarding.
"""

import numpy as np

from repro.analysis import machine_history
from repro.checking import check_axiomatic_tso, check_tso
from repro.machines import TSOMachine
from repro.programs import Read, Write, explore


class TestNoForwardingSemantics:
    def test_read_own_location_drains_first(self):
        m = TSOMachine(("p", "q"), forwarding=False)
        m.write("p", "x", 1)
        assert m.read("p", "x") == 1
        # The store became globally visible as a side effect.
        assert m.read("q", "x") == 1

    def test_drain_stops_at_youngest_matching_store(self):
        m = TSOMachine(("p", "q"), forwarding=False)
        m.write("p", "x", 1)
        m.write("p", "y", 2)
        m.write("p", "x", 3)
        assert m.read("p", "x") == 3
        assert m.buffered("p") == ()  # x=1, y=2, x=3 all committed
        assert m.read("q", "y") == 2

    def test_unrelated_locations_stay_buffered(self):
        m = TSOMachine(("p", "q"), forwarding=False)
        m.write("p", "x", 1)
        assert m.read("p", "y") == 0  # different location: no drain
        assert m.buffered("p") == (("x", 1),)

    def test_sb_fwd_outcome_unreachable(self):
        # The divergent E8 outcome requires forwarding; without it the
        # own-location read commits the store, so the other processor's
        # stale read can no longer complete the pattern symmetrically.
        def iter_thread(ops):
            for op in ops:
                yield op

        def setup():
            machine = TSOMachine(("p", "q"), forwarding=False)
            return machine, {
                "p": lambda: iter_thread([Write("x", 1), Read("x"), Read("y")]),
                "q": lambda: iter_thread([Write("y", 1), Read("y"), Read("x")]),
            }

        for result in explore(setup, max_steps=80):
            h = result.history
            outcome = (
                h.op("p", 1).value, h.op("p", 2).value,
                h.op("q", 1).value, h.op("q", 2).value,
            )
            assert outcome != (1, 0, 1, 0), f"forwarding outcome reached:\n{h}"


class TestNoForwardingSoundness:
    def test_traces_satisfy_paper_tso(self):
        rng = np.random.default_rng(41)
        for _ in range(40):
            m = TSOMachine(("p", "q"), forwarding=False)
            h = machine_history(m, rng, ops_per_proc=3)
            assert check_tso(h).allowed, f"paper-TSO violated:\n{h}"

    def test_traces_satisfy_axiomatic_tso_too(self):
        # paper-TSO ⊆ axiomatic TSO, so this follows; asserted directly
        # as a sanity cross-check.
        rng = np.random.default_rng(43)
        for _ in range(20):
            m = TSOMachine(("p", "q"), forwarding=False)
            h = machine_history(m, rng, ops_per_proc=3)
            assert check_axiomatic_tso(h).allowed

    def test_exhaustive_sb_traces_satisfy_paper_tso(self):
        def iter_thread(ops):
            for op in ops:
                yield op

        def setup():
            machine = TSOMachine(("p", "q"), forwarding=False)
            return machine, {
                "p": lambda: iter_thread([Write("x", 1), Read("x"), Read("y")]),
                "q": lambda: iter_thread([Write("y", 2), Read("x")]),
            }

        for result in explore(setup, max_steps=80):
            assert check_tso(result.history).allowed, str(result.history)
