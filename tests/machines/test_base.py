"""Edge-case tests for the machine base class."""

import pytest

from repro.core import MachineError
from repro.core.operation import OpKind
from repro.machines import PRAMMachine, SCMachine
from repro.machines.base import MemoryMachine


class TestConstruction:
    def test_duplicate_procs_rejected(self):
        with pytest.raises(MachineError):
            SCMachine(("p", "p"))

    def test_procs_preserved_in_order(self):
        m = SCMachine(("z", "a"))
        assert m.procs == ("z", "a")


class TestRecording:
    def test_operation_count(self):
        m = SCMachine(("p", "q"))
        m.write("p", "x", 1)
        m.read("q", "x")
        m.rmw("p", "l", 2)
        assert m.operation_count() == 3

    def test_rmw_recorded_with_both_halves(self):
        m = SCMachine(("p",))
        m.write("p", "x", 5)
        m.rmw("p", "x", 9)
        op = m.history().op("p", 1)
        assert op.kind is OpKind.RMW
        assert op.read_value == 5 and op.value == 9

    def test_indices_dense_per_proc(self):
        m = SCMachine(("p", "q"))
        m.write("p", "x", 1)
        m.write("q", "y", 2)
        m.write("p", "z", 3)
        h = m.history()
        assert [op.index for op in h.ops_of("p")] == [0, 1]
        assert [op.index for op in h.ops_of("q")] == [0]

    def test_history_snapshot_not_live(self):
        m = SCMachine(("p",))
        m.write("p", "x", 1)
        h1 = m.history()
        m.write("p", "x", 2)
        assert len(h1.operations) == 1
        assert len(m.history().operations) == 2


class TestDefaults:
    def test_default_machine_has_no_events(self):
        m = SCMachine(("p",))
        assert m.internal_events() == [] and m.quiescent()
        with pytest.raises(MachineError):
            m.fire(("anything",))

    def test_rmw_unsupported_by_default(self):
        class Bare(MemoryMachine):
            name = "bare"

            def _do_read(self, proc, location, labeled):
                return 0

            def _do_write(self, proc, location, value, labeled):
                pass

        m = Bare(("p",))
        with pytest.raises(MachineError):
            m.rmw("p", "x", 1)

    def test_drain_guard_against_livelock(self):
        class Livelock(PRAMMachine):
            def fire(self, key):  # never consumes anything
                pass

        m = Livelock(("p", "q"))
        m.write("p", "x", 1)
        with pytest.raises(MachineError):
            m.drain(max_steps=10)
