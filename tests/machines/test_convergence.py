"""Liveness-flavored properties: replicated machines converge when drained.

The paper handles termination implicitly ("an operation must appear in
some view and hence it must complete", Section 3.2); operationally that
corresponds to: once all in-flight updates are delivered, replicas agree
wherever the model forces agreement.  These tests pin that down per
machine.
"""

import numpy as np
import pytest

from repro.analysis import machine_history
from repro.machines import (
    CausalMachine,
    CoherentMachine,
    PCMachine,
    PRAMMachine,
    TSOMachine,
)

PROCS = ("p", "q", "r")


def _random_writes(machine, rng, n=30):
    """Issue random writes; returns each location's newest value (issue order)."""
    last: dict[str, int] = {}
    for i in range(n):
        proc = PROCS[int(rng.integers(len(PROCS)))]
        loc = f"x{int(rng.integers(3))}"
        machine.write(proc, loc, i + 1)
        last[loc] = i + 1
    return last


@pytest.mark.parametrize(
    "machine_cls", [PCMachine, CoherentMachine], ids=["PC", "Coherent"]
)
def test_coherent_machines_converge_to_newest_serial(machine_cls):
    """After a drain every replica holds each location's newest write."""
    rng = np.random.default_rng(3)
    m = machine_cls(PROCS)
    last = _random_writes(m, rng)
    m.drain()
    for proc in PROCS:
        for loc, value in last.items():
            assert m.read(proc, loc) == value, f"{proc} stale on {loc}"


def test_tso_drain_publishes_all_stores():
    m = TSOMachine(("p", "q"))
    for i in range(10):
        m.write("p", f"x{i % 3}", i + 1)
    m.drain()
    assert m.quiescent()
    # Memory holds p's newest store per location; q observes them.
    assert m.read("q", "x0") == 10
    assert m.read("q", "x1") == 8
    assert m.read("q", "x2") == 9


def test_pram_converges_per_writer():
    """After a drain each replica reflects every writer's last write per
    location — but *which* writer's value wins may differ by replica
    (PRAM never promises agreement).  What must hold: each replica's
    value for a location is some writer's final value for it."""
    rng = np.random.default_rng(5)
    m = PRAMMachine(PROCS)
    _random_writes(m, rng)
    finals: dict[str, set[int]] = {}
    for proc in PROCS:
        last: dict[str, int] = {}
        for op in m.history().ops_of(proc):
            if op.is_write:
                last[op.location] = op.value
        for loc, value in last.items():
            finals.setdefault(loc, set()).add(value)
    m.drain()
    for proc in PROCS:
        for loc, candidates in finals.items():
            assert m.read(proc, loc) in candidates


def test_causal_machine_quiesces_and_histories_stay_causal():
    """Causal gating never deadlocks: every pending update eventually
    becomes deliverable, and the drained machine is quiescent."""
    rng = np.random.default_rng(7)
    for trial in range(10):
        m = CausalMachine(PROCS)
        machine_history(m, rng, procs=PROCS, ops_per_proc=4)
        m.drain()
        assert m.quiescent()
        # Vectors converge: everyone has applied every write.
        totals = {p: sum(m.vector_of(p).values()) for p in PROCS}
        assert len(set(totals.values())) == 1
