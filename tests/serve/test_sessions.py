"""Incremental sessions over the wire: the live round-trip acceptance.

The ISSUE's serve criterion: a session created over a real socket,
streamed op by op to a DENY, must report per-op admit/deny verdicts that
are byte-parity with in-process one-shot checks, expose the denial
reasons and witness views on ``GET /session/<id>``, and feed the
per-session counters of ``GET /stats``.
"""

import http.client
import json

import pytest

from repro.checking.models import MODELS
from repro.core.serialization import check_result_to_dict
from repro.kernel.search import check_with_spec
from repro.litmus import parse_history
from repro.serve import ServeConfig, ServerThread
from repro.serve.service import CheckService


def _request(port, method, path, body=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    payload = json.dumps(body) if body is not None else None
    conn.request(method, path, body=payload)
    response = conn.getresponse()
    data = json.loads(response.read().decode("utf-8"))
    conn.close()
    return response.status, data


@pytest.fixture(scope="module")
def server():
    config = ServeConfig(port=0, workers=2, log_requests=False)
    with ServerThread(config) as srv:
        yield srv


class TestLiveRoundTrip:
    def test_create_stream_to_deny_and_fetch_witness(self, server):
        status, created = _request(
            server.port,
            "POST",
            "/session",
            {"models": ["SC", "PRAM", "Coherence"], "prepass": False},
        )
        assert status == 201, created
        sid = created["session"]
        assert created["operations"] == 0
        assert created["denying"] == []

        # Stream to an all-admit prefix, then push it over into DENY.
        status, r1 = _request(
            server.port, "POST", f"/session/{sid}/append", {"op": "p: w(x)1"}
        )
        assert status == 200 and r1["admitted"], r1
        status, r2 = _request(
            server.port,
            "POST",
            f"/session/{sid}/append",
            {"ops": ["q: r(x)1", "q: r(x)0"]},
        )
        assert status == 200, r2
        assert [s["op"] for s in r2["steps"]] == ["r_q(x)1", "r_q(x)0"]
        assert r2["steps"][0]["denying"] == []
        assert set(r2["steps"][1]["denying"]) == {"SC", "PRAM", "Coherence"}
        assert not r2["admitted"]

        # The snapshot carries reasons for the DENY and the op log —
        # and the per-model results are byte-parity with in-process
        # checks of the same history (normalized through JSON: the
        # response crossed the wire).
        status, snap = _request(server.port, "GET", f"/session/{sid}")
        assert status == 200
        assert snap["operations"] == 3
        assert set(snap["denying"]) == {"SC", "PRAM", "Coherence"}
        assert [s["op"] for s in snap["log"]] == [
            "w_p(x)1",
            "r_q(x)1",
            "r_q(x)0",
        ]
        history = parse_history(snap["history"])
        for name in ("SC", "PRAM", "Coherence"):
            expected = json.loads(
                json.dumps(
                    check_result_to_dict(
                        check_with_spec(MODELS[name].spec, history)
                    )
                )
            )
            assert snap["results"][name] == expected, name
            assert snap["reasons"][name] == expected["reason"]

        # Stats sourced from the kernel's session events.
        status, stats = _request(server.port, "GET", "/stats")
        assert status == 200
        sessions = stats["sessions"]
        assert sessions["created"] >= 1
        assert sessions["active"] >= 1
        # 3 ops × 3 models' checks reacted to an append.
        assert sessions["appends"] >= 9
        assert sessions["planes_grown"] >= 1

        status, closed = _request(server.port, "DELETE", f"/session/{sid}")
        assert status == 200 and closed["closed"]
        status, _ = _request(server.port, "GET", f"/session/{sid}")
        assert status == 404

    def test_witness_views_on_an_admitting_session(self, server):
        _, created = _request(
            server.port, "POST", "/session", {"models": ["SC"]}
        )
        sid = created["session"]
        _, r = _request(
            server.port,
            "POST",
            f"/session/{sid}/append",
            {"ops": ["p: w(x)1", "q: r(x)1"]},
        )
        assert r["admitted"]
        _, snap = _request(server.port, "GET", f"/session/{sid}")
        assert snap["views"]["SC"], "admitting model should carry a witness"
        assert snap["reasons"] == {}
        _request(server.port, "DELETE", f"/session/{sid}")

    def test_seeded_session(self, server):
        _, created = _request(
            server.port,
            "POST",
            "/session",
            {"models": ["SC"], "history": "p: w(x)1 w(x)2 | q: r(x)2 r(x)1"},
        )
        assert created["operations"] == 4
        assert created["denying"] == ["SC"]
        _request(server.port, "DELETE", f"/session/{created['session']}")

    def test_bad_requests(self, server):
        status, err = _request(
            server.port, "POST", "/session", {"models": ["NOPE"]}
        )
        assert status == 400 and "unknown model" in err["error"]
        status, err = _request(
            server.port, "POST", "/session", {"frobnicate": 1}
        )
        assert status == 400 and "unknown session parameter" in err["error"]
        status, err = _request(
            server.port, "POST", "/session/ses:missing/append", {"op": "p: w(x)1"}
        )
        assert status == 404
        _, created = _request(
            server.port, "POST", "/session", {"models": ["SC"]}
        )
        sid = created["session"]
        status, err = _request(
            server.port, "POST", f"/session/{sid}/append", {"op": "garbage"}
        )
        assert status == 400 and "bad op line" in err["error"]
        status, err = _request(
            server.port, "POST", f"/session/{sid}/append", {}
        )
        assert status == 400
        status, err = _request(server.port, "PUT", f"/session/{sid}")
        assert status == 405
        _request(server.port, "DELETE", f"/session/{sid}")


class TestServiceUnits:
    def test_session_table_evicts_lru(self):
        service = CheckService(
            ServeConfig(workers=1, log_requests=False, max_sessions=2)
        )
        try:
            ids = [
                service.create_session({"models": ["SC"]}).result()["session"]
                for _ in range(3)
            ]
            # The oldest session fell off the LRU.
            assert service.session_state(ids[0]) is None
            assert service.session_state(ids[1]) is not None
            assert service.session_state(ids[2]) is not None
            stats = service.stats()["sessions"]
            assert stats["created"] == 3
            assert stats["evicted"] == 1
            assert stats["active"] == 2
        finally:
            service.drain()

    def test_appends_survive_a_partial_line_error(self):
        service = CheckService(ServeConfig(workers=1, log_requests=False))
        try:
            sid = service.create_session({"models": ["SC"]}).result()[
                "session"
            ]
            future = service.append_session(
                sid, {"ops": ["p: w(x)1", "garbage", "q: r(x)1"]}
            )
            with pytest.raises(Exception, match="1 op"):
                future.result()
            snap = service.session_state(sid)
            # The op before the bad line landed; the one after did not.
            assert snap["operations"] == 1
            assert [s["op"] for s in snap["log"]] == ["w_p(x)1"]
        finally:
            service.drain()

    def test_drain_refuses_new_sessions(self):
        service = CheckService(ServeConfig(workers=1, log_requests=False))
        service.drain()
        from repro.core.errors import EngineError

        with pytest.raises(EngineError, match="draining"):
            service.create_session({"models": ["SC"]})
