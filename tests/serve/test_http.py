"""Protocol-level tests for the asyncio HTTP layer (no service behind it)."""

import asyncio
import json

import pytest

from repro.serve.http import (
    HttpError,
    HttpRequest,
    HttpServer,
    read_request,
    response_bytes,
)


def _run(coro):
    return asyncio.run(coro)


async def _roundtrip(raw: bytes, *, max_body_bytes: int = 1 << 20):
    reader = asyncio.StreamReader()
    reader.feed_data(raw)
    reader.feed_eof()
    return await read_request(reader, max_body_bytes=max_body_bytes)


class TestReadRequest:
    def test_parses_post_with_body(self):
        body = b'{"history": "fig1-sb"}'
        raw = (
            b"POST /check?x=1&y HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: %d\r\n\r\n" % len(body)
        ) + body
        request = _run(_roundtrip(raw))
        assert request.method == "POST"
        assert request.path == "/check"
        assert request.query == {"x": "1", "y": ""}
        assert request.json() == {"history": "fig1-sb"}

    def test_clean_eof_returns_none(self):
        assert _run(_roundtrip(b"")) is None

    def test_torn_request_is_400(self):
        with pytest.raises(HttpError) as exc:
            _run(_roundtrip(b"GET /x HTTP/1.1\r\nHost"))
        assert exc.value.status == 400

    def test_malformed_request_line_is_400(self):
        with pytest.raises(HttpError) as exc:
            _run(_roundtrip(b"NONSENSE\r\n\r\n"))
        assert exc.value.status == 400

    def test_post_without_length_is_411(self):
        with pytest.raises(HttpError) as exc:
            _run(_roundtrip(b"POST /check HTTP/1.1\r\n\r\n"))
        assert exc.value.status == 411

    def test_oversize_body_refused_before_read(self):
        raw = b"POST /check HTTP/1.1\r\nContent-Length: 999\r\n\r\n"
        with pytest.raises(HttpError) as exc:
            _run(_roundtrip(raw, max_body_bytes=100))
        assert exc.value.status == 413

    def test_non_object_json_body_is_400(self):
        request = HttpRequest(method="POST", path="/check", body=b"[1,2]")
        with pytest.raises(HttpError) as exc:
            request.json()
        assert exc.value.status == 400

    def test_response_bytes_shape(self):
        raw = response_bytes(200, {"ok": True})
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Length: %d" % len(body) in head
        assert json.loads(body) == {"ok": True}


async def _request_line(port: int, raw: bytes) -> bytes:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(raw)
    await writer.drain()
    status_line = await reader.readline()
    writer.close()
    return status_line


class TestServerDispatch:
    def test_slow_handler_times_out_to_503(self):
        async def scenario():
            async def slow(request):
                await asyncio.sleep(5)
                return 200, {}

            server = HttpServer(slow, request_timeout=0.05, log_requests=False)
            await server.start()
            try:
                line = await _request_line(
                    server.port, b"GET /slow HTTP/1.1\r\nConnection: close\r\n\r\n"
                )
                assert b"503" in line
            finally:
                await server.shutdown(drain_seconds=1)

        _run(scenario())

    def test_handler_exception_becomes_500(self):
        async def scenario():
            async def boom(request):
                raise RuntimeError("kaboom")

            server = HttpServer(boom, log_requests=False)
            await server.start()
            try:
                line = await _request_line(
                    server.port, b"GET /x HTTP/1.1\r\nConnection: close\r\n\r\n"
                )
                assert b"500" in line
            finally:
                await server.shutdown(drain_seconds=1)

        _run(scenario())

    def test_shutdown_drains_in_flight_request(self):
        async def scenario():
            release = asyncio.Event()
            entered = asyncio.Event()

            async def gated(request):
                entered.set()
                await release.wait()
                return 200, {"drained": True}

            server = HttpServer(gated, log_requests=False)
            await server.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(b"GET /x HTTP/1.1\r\nConnection: close\r\n\r\n")
            await writer.drain()
            await entered.wait()
            shutdown = asyncio.ensure_future(server.shutdown(drain_seconds=10))
            await asyncio.sleep(0.05)
            assert not shutdown.done()  # waiting on the in-flight request
            release.set()
            await shutdown
            line = await reader.readline()
            assert b"200" in line  # the response still arrived
            writer.close()

        _run(scenario())
