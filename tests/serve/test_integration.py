"""End-to-end tests: the full server stack over real HTTP connections.

The acceptance contract for the serve subsystem lives here:
``POST /check`` must return the *same* verdict + witness JSON as calling
:func:`repro.kernel.search.check_with_spec` in process, for every
catalog entry under every registered model.
"""

import http.client
import json
import time

import pytest

from repro.checking.models import MODELS, model_names
from repro.core.serialization import check_result_to_dict
from repro.engine import SqliteResultStore
from repro.kernel.search import check_with_spec
from repro.litmus import CATALOG
from repro.serve import ServeConfig, ServerThread


def _request(port, method, path, body=None, headers=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    payload = json.dumps(body) if body is not None else None
    conn.request(method, path, body=payload, headers=headers or {})
    response = conn.getresponse()
    data = json.loads(response.read().decode("utf-8"))
    conn.close()
    return response.status, data


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("serve")
    config = ServeConfig(
        port=0,
        workers=2,
        store_url=f"sqlite:{tmp}/serve.db",
        log_requests=False,
    )
    with ServerThread(config) as srv:
        yield srv


class TestAcceptance:
    def test_check_matches_check_with_spec_for_every_catalog_model_pair(
        self, server
    ):
        """The ISSUE acceptance criterion, asserted pair by pair."""
        for name, entry in CATALOG.items():
            status, response = _request(
                server.port, "POST", "/check",
                {"history": name, "models": "all"},
            )
            assert status == 200, (name, response)
            for model_name in model_names():
                model = MODELS[model_name]
                if model.spec is not None:
                    expected = check_with_spec(
                        model.spec, entry.history, prepass=True
                    )
                else:
                    expected = model.check(entry.history)
                # Normalize through JSON: the response crossed the wire.
                expected_dict = json.loads(
                    json.dumps(check_result_to_dict(expected))
                )
                got = response["results"][model_name]
                assert got == expected_dict, (name, model_name)
                assert response["models"][model_name] == expected.allowed


class TestEndpoints:
    def test_healthz_and_models(self, server):
        status, body = _request(server.port, "GET", "/healthz")
        assert (status, body["status"]) == (200, "ok")
        status, body = _request(server.port, "GET", "/models")
        assert status == 200
        assert body["models"] == list(model_names())
        # The endpoint tracks the registry: the session-guarantee and
        # partition families must be served without serve-layer changes.
        for name in ("read-your-writes", "session-causal", "partition-3"):
            assert name in body["models"]

    def test_resubmission_is_a_cache_hit(self, server):
        request = {"history": "fig2-pc-not-tso", "models": "SC,PC,TSO"}
        status, first = _request(server.port, "POST", "/check", request)
        assert status == 200
        status, second = _request(server.port, "POST", "/check", request)
        assert status == 200
        assert second["cached"] is True
        assert second["key"] == first["key"]
        assert second["models"] == first["models"] == {
            "SC": False, "PC": True, "TSO": False,
        }

    def test_result_and_witness_endpoints(self, server):
        status, response = _request(
            server.port, "POST", "/check",
            {"history": "fig1-sb", "models": "SC,TSO"},
        )
        key = response["key"]
        status, result = _request(server.port, "GET", f"/result/{key}")
        assert status == 200
        assert result["models"] == {"SC": False, "TSO": True}
        status, witness = _request(server.port, "GET", f"/witness/{key}")
        assert status == 200
        assert witness["key"] == key
        assert witness["views"]["TSO"]  # the admit verdict carries views
        assert "SC" not in witness["views"]  # denials have no witness

    def test_async_check_queues_then_resolves(self, server):
        status, queued = _request(
            server.port, "POST", "/check",
            {"history": "fig3-pram-not-tso", "models": "PRAM", "async": True},
        )
        assert status in (200, 202)  # 200 if an earlier test warmed the key
        key = queued["key"]
        deadline = time.time() + 60
        while time.time() < deadline:
            status, body = _request(server.port, "GET", f"/result/{key}")
            if status == 200:
                assert body["models"] == {"PRAM": True}
                return
            time.sleep(0.05)
        pytest.fail("async check never resolved")

    def test_sweep_job_flow(self, server):
        params = {"source": "catalog", "models": "SC,TSO"}
        status, job = _request(server.port, "POST", "/sweep", params)
        assert status == 202
        assert job["job"].startswith("swp:")
        deadline = time.time() + 120
        while time.time() < deadline:
            status, body = _request(server.port, "GET", job["poll"])
            assert status == 200
            if body["status"] == "done":
                break
            time.sleep(0.05)
        assert body["status"] == "done"
        assert body["report"]["counts"]["SC"] >= 1
        # Resubmitting the same sweep returns the finished job.
        status, again = _request(server.port, "POST", "/sweep", params)
        assert status == 200
        assert again["job"] == job["job"]
        assert again["status"] == "done"

    def test_stats_reflects_traffic(self, server):
        status, stats = _request(server.port, "GET", "/stats")
        assert status == 200
        assert stats["counters"]["checks"] > 0
        assert stats["counters"]["cache_hits"] >= 1
        assert stats["jobs"].get("done", 0) >= 1
        assert "SC" in stats["verdicts"]
        assert stats["store"]["results"] > 0
        assert stats["store"]["url"].startswith("sqlite:")


class TestErrorPaths:
    def test_bad_json_body_is_400(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        conn.request("POST", "/check", body=b"{not json")
        response = conn.getresponse()
        body = json.loads(response.read())
        conn.close()
        assert response.status == 400
        assert "JSON" in body["error"]

    def test_missing_history_is_400(self, server):
        status, body = _request(server.port, "POST", "/check", {})
        assert status == 400 and "history" in body["error"]

    def test_unknown_model_is_400(self, server):
        status, body = _request(
            server.port, "POST", "/check",
            {"history": "fig1-sb", "models": "Bogus"},
        )
        assert status == 400 and "unknown model" in body["error"]

    def test_unknown_route_is_404(self, server):
        status, body = _request(server.port, "GET", "/nope")
        assert status == 404

    def test_unknown_result_key_is_404(self, server):
        status, body = _request(server.port, "GET", "/result/chk:missing")
        assert status == 404

    def test_wrong_method_is_405(self, server):
        status, body = _request(server.port, "GET", "/check")
        assert status == 405

    def test_oversize_body_is_413_before_the_body_is_read(self, server):
        # The refusal arrives off the Content-Length alone, so send just
        # the headers (a library client would get a broken pipe mid-body).
        import socket

        with socket.create_connection(("127.0.0.1", server.port), 10) as sock:
            sock.sendall(
                b"POST /check HTTP/1.1\r\n"
                b"Content-Length: 2097152\r\n\r\n"
            )
            status_line = sock.makefile("rb").readline()
        assert b"413" in status_line

    def test_bad_sweep_parameter_is_400(self, server):
        status, body = _request(
            server.port, "POST", "/sweep", {"source": "catalog", "nope": 1}
        )
        assert status == 400 and "nope" in body["error"]


class TestGracefulShutdown:
    def test_inflight_work_lands_in_store_before_exit(self, tmp_path):
        """SIGTERM semantics: queued jobs finish and persist, then close."""
        url = f"sqlite:{tmp_path}/drain.db"
        srv = ServerThread(
            ServeConfig(port=0, workers=1, store_url=url, log_requests=False)
        ).start()
        status, queued = _request(
            srv.port, "POST", "/check",
            {"history": "fig4-causal-not-tso", "models": "paper", "async": True},
        )
        assert status == 202
        status, job = _request(
            srv.port, "POST", "/sweep", {"source": "catalog", "models": "SC"}
        )
        assert status == 202
        srv.shutdown()  # drains the queued check AND the running sweep

        service = srv.service
        assert service.job(job["job"]).status == "done"
        store = SqliteResultStore(tmp_path / "drain.db")
        records = list(store.records())
        assert records[-1]["type"] == "summary"  # end-of-run summary landed
        assert queued["key"] in store.completed_keys()
        assert len(store.completed_keys()) >= 1 + len(CATALOG)

        # And the drained server refuses fresh work.
        import pytest as _pytest
        from repro.core.errors import EngineError

        with _pytest.raises(EngineError):
            service.submit_check("fig1-sb", "SC")
