"""Unit tests for the service core: keys, resolution, caching, drain."""

import pytest

from repro.checking.models import MODELS, PAPER_MODELS, model_names
from repro.core.errors import EngineError
from repro.core.serialization import history_to_dict
from repro.engine import SqliteResultStore
from repro.litmus import CATALOG, format_history
from repro.serve import CheckService, ServeConfig, job_key
from repro.serve.service import (
    ServeError,
    resolve_history,
    resolve_models,
    sweep_key,
)


class TestJobKey:
    def test_content_addressed_across_submission_forms(self):
        """Catalog name, litmus text, and wire dict land on the same key."""
        name = "fig1-sb"
        history = CATALOG[name].history
        forms = [name, format_history(history), history_to_dict(history)]
        keys = {
            job_key(resolve_history(form), ("SC", "TSO")) for form in forms
        }
        assert len(keys) == 1
        key = keys.pop()
        assert key.startswith("chk:") and len(key) == 4 + 32

    def test_model_order_does_not_matter(self):
        history = CATALOG["fig1-sb"].history
        assert job_key(history, ("SC", "TSO")) == job_key(history, ("TSO", "SC"))

    def test_distinct_inputs_distinct_keys(self):
        a = CATALOG["fig1-sb"].history
        b = CATALOG["mp"].history
        assert job_key(a, ("SC",)) != job_key(b, ("SC",))
        assert job_key(a, ("SC",)) != job_key(a, ("TSO",))

    def test_sweep_key_shape(self):
        from repro.engine import SweepSpec

        key = sweep_key(SweepSpec(source="catalog", models=("SC",)))
        assert key.startswith("swp:") and len(key) == 4 + 32


class TestResolveHistory:
    def test_prefix_match(self):
        # Catalog entries rebuild their history per access: compare by key.
        assert job_key(resolve_history("fig1"), ("SC",)) == job_key(
            CATALOG["fig1-sb"].history, ("SC",)
        )

    def test_ambiguous_prefix_falls_through_to_parse_error(self):
        with pytest.raises(ServeError, match="litmus"):
            resolve_history("fig")

    def test_bad_dict(self):
        with pytest.raises(ServeError, match="history dict"):
            resolve_history({"version": 99})

    def test_bad_type(self):
        with pytest.raises(ServeError, match="history must be"):
            resolve_history(42)


class TestResolveModels:
    def test_default_is_paper_set(self):
        assert resolve_models(None) == PAPER_MODELS
        assert resolve_models("paper") == PAPER_MODELS

    def test_all_and_spec_aliases(self):
        assert resolve_models("all") == model_names()
        spec = resolve_models("spec")
        assert all(MODELS[m].spec is not None for m in spec)
        assert "TSO-axiomatic" not in spec

    def test_comma_string_and_list(self):
        assert resolve_models("SC,TSO") == ("SC", "TSO")
        assert resolve_models(["SC", "TSO"]) == ("SC", "TSO")

    def test_unknown_model(self):
        with pytest.raises(ServeError, match="unknown model"):
            resolve_models("SC,Bogus")

    def test_empty_and_bad_types(self):
        with pytest.raises(ServeError, match="empty"):
            resolve_models("")
        with pytest.raises(ServeError, match="bad model set"):
            resolve_models(7)


class TestServiceCaching:
    def test_store_survives_service_restart(self, tmp_path):
        url = f"sqlite:{tmp_path}/serve.db"
        first = CheckService(ServeConfig(store_url=url, workers=1))
        try:
            key, outcome = first.submit_check("fig1-sb", "SC,TSO")
            response = outcome.result(timeout=60)
            assert response["models"] == {"SC": False, "TSO": True}
        finally:
            first.drain()

        second = CheckService(ServeConfig(store_url=url, workers=1))
        try:
            hit = second.cached_response(key)
            assert hit is not None
            assert hit["cached"] is True
            assert hit["models"] == {"SC": False, "TSO": True}
            assert second.stats()["counters"]["store_hits"] == 1
            # And a resubmission resolves without touching the pool.
            key2, outcome2 = second.submit_check("fig1-sb", "SC,TSO")
            assert key2 == key
            assert isinstance(outcome2, dict)
        finally:
            second.drain()

    def test_memory_cache_hit(self):
        service = CheckService(ServeConfig(workers=1))
        try:
            key, outcome = service.submit_check("fig1-sb", "SC")
            outcome.result(timeout=60)
            key2, hit = service.submit_check("fig1-sb", "SC")
            assert key2 == key
            assert isinstance(hit, dict) and hit["cached"] is True
            assert service.stats()["counters"]["cache_hits"] == 1
        finally:
            service.drain()


class TestDrain:
    def test_drain_rejects_new_work_and_is_idempotent(self, tmp_path):
        url = f"sqlite:{tmp_path}/serve.db"
        service = CheckService(ServeConfig(store_url=url, workers=1))
        key, outcome = service.submit_check("fig1-sb", "SC")
        service.drain()
        assert outcome.done()
        with pytest.raises(EngineError, match="draining"):
            service.submit_check("fig1-sb", "TSO")
        service.drain()  # second call is a no-op

        # The store got its end-of-run summary and holds the result.
        store = SqliteResultStore(tmp_path / "serve.db")
        records = list(store.records())
        assert records[0]["type"] == "run"
        assert records[-1]["type"] == "summary"
        assert key in store.completed_keys()
