"""Unit tests for the Relation algebra."""

import pytest

from repro.orders.relation import Relation


def rel(items, pairs=()):
    return Relation(items, pairs)


class TestBasics:
    def test_empty(self):
        r = rel("abc")
        assert len(r) == 0 and not r.orders("a", "b")

    def test_add_and_contains(self):
        r = rel("abc", [("a", "b")])
        assert ("a", "b") in r and ("b", "a") not in r

    def test_duplicate_items_rejected(self):
        with pytest.raises(ValueError):
            rel("aab")

    def test_pairs_deterministic(self):
        r = rel("abc", [("a", "c"), ("a", "b")])
        assert list(r.pairs()) == [("a", "b"), ("a", "c")]

    def test_successors_predecessors(self):
        r = rel("abc", [("a", "b"), ("a", "c")])
        assert r.successors("a") == ("b", "c")
        assert r.predecessors("c") == ("a",)

    def test_in_degrees(self):
        r = rel("abc", [("a", "b"), ("c", "b")])
        assert r.in_degrees() == {"a": 0, "b": 2, "c": 0}

    def test_from_chains(self):
        r = Relation.from_chains(["abc", "de"])
        assert ("a", "b") in r and ("d", "e") in r and ("a", "c") not in r


class TestCombinators:
    def test_union(self):
        r = rel("abc", [("a", "b")]).union(rel("abc", [("b", "c")]))
        assert ("a", "b") in r and ("b", "c") in r

    def test_union_does_not_mutate(self):
        base = rel("abc", [("a", "b")])
        base.union(rel("abc", [("b", "c")]))
        assert ("b", "c") not in base

    def test_restrict_by_predicate(self):
        r = rel("abc", [("a", "b"), ("b", "c")]).restrict(lambda x: x != "b")
        assert r.items == ("a", "c") and len(r) == 0

    def test_restrict_by_iterable(self):
        r = rel("abc", [("a", "b")]).restrict(["a", "b"])
        assert ("a", "b") in r

    def test_closure_small(self):
        r = rel("abc", [("a", "b"), ("b", "c")]).transitive_closure()
        assert ("a", "c") in r

    def test_closure_large_uses_numpy_path(self):
        items = list(range(20))
        chain = rel(items, [(i, i + 1) for i in range(19)])
        closed = chain.transitive_closure()
        assert (0, 19) in closed
        assert len(closed) == 20 * 19 // 2

    def test_closure_of_cycle(self):
        r = rel("ab", [("a", "b"), ("b", "a")]).transitive_closure()
        assert ("a", "a") in r and ("b", "b") in r

    def test_compose(self):
        r1 = rel("abc", [("a", "b")])
        r2 = rel("abc", [("b", "c")])
        assert ("a", "c") in r1.compose(r2)


class TestOrderTheory:
    def test_acyclic(self):
        assert rel("abc", [("a", "b"), ("b", "c")]).is_acyclic()
        assert not rel("ab", [("a", "b"), ("b", "a")]).is_acyclic()

    def test_find_cycle_returns_path(self):
        cyc = rel("abc", [("a", "b"), ("b", "c"), ("c", "a")]).find_cycle()
        assert cyc is not None and cyc[0] == cyc[-1]

    def test_topological_sort(self):
        order = rel("abc", [("c", "a"), ("a", "b")]).topological_sort()
        assert order.index("c") < order.index("a") < order.index("b")

    def test_topological_sort_cyclic_raises(self):
        with pytest.raises(ValueError):
            rel("ab", [("a", "b"), ("b", "a")]).topological_sort()

    def test_all_topological_sorts_count(self):
        # Two incomparable chains of 2: C(4,2) = 6 interleavings.
        r = Relation.from_chains(["ab", "cd"])
        assert sum(1 for _ in r.all_topological_sorts()) == 6

    def test_all_topological_sorts_respect_constraints(self):
        r = rel("abc", [("a", "b")])
        for order in r.all_topological_sorts():
            assert order.index("a") < order.index("b")

    def test_is_linear_extension(self):
        r = rel("abc", [("a", "b")])
        assert r.is_linear_extension(["a", "b", "c"])
        assert not r.is_linear_extension(["b", "a", "c"])
        assert not r.is_linear_extension(["a", "b"])  # wrong universe
