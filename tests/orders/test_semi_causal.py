"""Tests for remote writes-before, remote reads-before, and semi-causality."""

from repro.litmus import parse_history
from repro.orders import (
    rrb_relation,
    rwb_relation,
    sem_relation,
    unique_reads_from,
)


def mp_history():
    """Message-passing shape: p writes data then flag; q reads flag then data."""
    return parse_history("p: w(x)1 w(y)2 | q: r(y)2 r(x)0")


class TestRemoteWritesBefore:
    def test_earlier_write_ordered_before_observing_read(self):
        h = mp_history()
        rf = unique_reads_from(h)
        rwb = rwb_relation(h, rf)
        # q reads y=2 from w(y)2; w(x)1 ppo w(y)2, so w(x)1 ->rwb r(y)2.
        assert rwb.orders(h.op("p", 0), h.op("q", 0))

    def test_source_itself_not_related_by_rwb(self):
        h = mp_history()
        rf = unique_reads_from(h)
        rwb = rwb_relation(h, rf)
        assert not rwb.orders(h.op("p", 1), h.op("q", 0))

    def test_initial_reads_no_edges(self):
        h = parse_history("p: r(x)0")
        assert len(rwb_relation(h, unique_reads_from(h))) == 0


class TestRemoteReadsBefore:
    def test_old_read_before_newer_writers_successors(self):
        # q reads x old (initial), then p writes x=1 and afterwards y=2:
        # r_q(x)0 ->rrb w_p(y)2 via o' = w_p(x)1.
        h = parse_history("p: w(x)1 w(y)2 | q: r(x)0")
        rf = unique_reads_from(h)
        coherence = {"x": (h.op("p", 0),), "y": (h.op("p", 1),)}
        rrb = rrb_relation(h, rf, coherence)
        assert rrb.orders(h.op("q", 0), h.op("p", 1))

    def test_read_of_newest_value_unconstrained(self):
        h = parse_history("p: w(x)1 w(y)2 | q: r(x)1")
        rf = unique_reads_from(h)
        coherence = {"x": (h.op("p", 0),), "y": (h.op("p", 1),)}
        rrb = rrb_relation(h, rf, coherence)
        assert not rrb.orders(h.op("q", 0), h.op("p", 1))


class TestSemiCausality:
    def test_mp_is_sem_cyclic_with_legality(self):
        # The MP stale-read shape: sem orders w(x)1 before r(y)2 (rwb) and
        # q's reads are ordered (ppo); any legal view of q must place
        # r(x)0 before w(x)1, contradicting w(x)1 -> r(y)2 -> r(x)0.
        # Here we just confirm the rwb edge makes it into sem.
        h = mp_history()
        rf = unique_reads_from(h)
        coherence = {"x": (h.op("p", 0),), "y": (h.op("p", 1),)}
        sem = sem_relation(h, rf, coherence)
        assert sem.orders(h.op("p", 0), h.op("q", 0))
        assert sem.orders(h.op("q", 0), h.op("q", 1))  # ppo included
        assert sem.orders(h.op("p", 0), h.op("q", 1))  # transitive closure

    def test_sem_contains_ppo_only_when_no_communication(self):
        h = parse_history("p: w(x)1 r(y)0 | q: w(y)2 r(x)0")
        rf = unique_reads_from(h)
        coherence = {"x": (h.op("p", 0),), "y": (h.op("q", 0),)}
        sem = sem_relation(h, rf, coherence)
        # SB shape: no w->r ppo edges, reads read initial values; rrb edges
        # relate each read to nothing (the newer writes have no ppo
        # successors that are writes).
        assert not sem.orders(h.op("p", 0), h.op("p", 1))
        assert not sem.orders(h.op("q", 0), h.op("q", 1))
