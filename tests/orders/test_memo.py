"""Tests for the opt-in relation memoization layer."""

from repro.litmus import parse_history
from repro.orders import (
    RelationMemo,
    active_memo,
    po_relation,
    ppo_relation,
    relation_memo,
    wb_relation,
)
from repro.orders.memo import memoized_relation

H = parse_history("p: w(x)1 r(y)0 | q: w(y)2 r(x)1")


class TestInactiveByDefault:
    def test_no_memo_outside_context(self):
        assert active_memo() is None

    def test_decorated_functions_work_without_memo(self):
        assert set(po_relation(H).pairs()) == set(po_relation(H).pairs())


class TestActivation:
    def test_context_sets_and_restores(self):
        memo = RelationMemo()
        with relation_memo(memo):
            assert active_memo() is memo
        assert active_memo() is None

    def test_default_memo_created(self):
        with relation_memo() as memo:
            assert isinstance(memo, RelationMemo)
            assert active_memo() is memo

    def test_nesting_restores_outer(self):
        outer, inner = RelationMemo(), RelationMemo()
        with relation_memo(outer):
            with relation_memo(inner):
                assert active_memo() is inner
            assert active_memo() is outer


class TestCaching:
    def test_second_call_hits(self):
        with relation_memo() as memo:
            first = po_relation(H)
            second = po_relation(H)
        assert first is second
        assert memo.hits == 1 and memo.misses == 1

    def test_distinct_functions_distinct_entries(self):
        with relation_memo() as memo:
            po_relation(H)
            wb_relation(H)
        assert memo.hits == 0
        # wb internally reuses nothing memoized here besides its own chain.
        assert memo.misses >= 2

    def test_derived_relations_reuse_base(self):
        with relation_memo() as memo:
            ppo_relation(H)
            before = memo.counters()
            ppo_relation(H)
            after = memo.counters()
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]

    def test_results_match_unmemoized(self):
        bare = set(po_relation(H).pairs())
        with relation_memo():
            memoized = set(po_relation(H).pairs())
        assert bare == memoized

    def test_extra_args_bypass_memo(self):
        calls = []

        @memoized_relation
        def probe(history, flag=None):
            calls.append(flag)
            return len(calls)

        with relation_memo() as memo:
            assert probe(H) == 1
            assert probe(H, flag="x") == 2  # bypass: not cached
            assert probe(H, flag="x") == 3  # bypass again
            assert probe(H) == 1  # cached
        assert memo.hits == 1


class TestBypassSemantics:
    """The memo-bypass contract of ``memoized_relation``.

    Only a *non-None* keyword value opts a call out of the memo: an
    explicit ``flag=None`` is the default call spelled out, and must hit
    the same cache entry as the bare call.
    """

    def test_explicit_none_kwarg_still_hits_memo(self):
        calls = []

        @memoized_relation
        def probe(history, flag=None):
            calls.append(flag)
            return len(calls)

        with relation_memo() as memo:
            assert probe(H) == 1
            assert probe(H, flag=None) == 1  # same entry as the bare call
            assert probe(H, flag=None) == 1
        assert calls == [None]
        assert memo.hits == 2 and memo.misses == 1

    def test_bypass_leaves_cached_entry_intact(self):
        calls = []

        @memoized_relation
        def probe(history, flag=None):
            calls.append(flag)
            return len(calls)

        with relation_memo() as memo:
            assert probe(H) == 1
            assert probe(H, flag="x") == 2  # bypass computes fresh...
            assert probe(H) == 1  # ...without clobbering the entry
        assert memo.hits == 1 and memo.misses == 1

    def test_bypass_outside_memo_context(self):
        calls = []

        @memoized_relation
        def probe(history, flag=None):
            calls.append(flag)
            return len(calls)

        assert probe(H, flag="x") == 1
        assert probe(H) == 2  # no active memo: every call computes

    def test_nested_memo_restores_outer_with_counters_intact(self):
        outer = RelationMemo()
        with relation_memo(outer):
            po_relation(H)
            po_relation(H)
            snapshot = outer.counters()
            with relation_memo() as inner:
                po_relation(H)  # recomputed: the inner memo starts empty
                assert inner.misses == 1 and inner.hits == 0
            assert active_memo() is outer
            assert outer.counters() == snapshot  # untouched by the inner scope
            po_relation(H)
        assert outer.hits == snapshot["hits"] + 1


class TestEviction:
    def test_lru_bound_respected(self):
        histories = [
            parse_history(f"p: w(x){v}")
            for v in range(1, 6)
        ]
        memo = RelationMemo(max_histories=2)
        with relation_memo(memo):
            for h in histories:
                po_relation(h)
            assert len(memo._tables) == 2

    def test_clear_resets_counters(self):
        memo = RelationMemo()
        with relation_memo(memo):
            po_relation(H)
            po_relation(H)
        memo.clear()
        assert memo.hits == 0 and memo.misses == 0 and not memo._tables


class TestCounters:
    def test_hit_rate(self):
        memo = RelationMemo()
        assert memo.hit_rate == 0.0
        with relation_memo(memo):
            po_relation(H)
            po_relation(H)
            po_relation(H)
        assert memo.hit_rate == 2 / 3
        assert memo.lookups == 3
