"""Tests for coherence-order machinery."""

from repro.litmus import parse_history
from repro.orders import (
    coherence_position,
    coherence_relation,
    enumerate_coherence_orders,
    forced_coherence_pairs,
    program_write_chains,
    unique_reads_from,
)


class TestWriteChains:
    def test_per_proc_chains(self):
        h = parse_history("p: w(x)1 w(x)2 | q: w(x)3")
        chains = program_write_chains(h, "x")
        assert sorted(len(c) for c in chains) == [1, 2]

    def test_empty_for_untouched_location(self):
        h = parse_history("p: w(x)1")
        assert program_write_chains(h, "y") == []


class TestForcedPairs:
    def test_program_order_forced(self):
        h = parse_history("p: w(x)1 w(x)2")
        forced = forced_coherence_pairs(h, "x")
        assert forced.orders(h.op("p", 0), h.op("p", 1))

    def test_reads_from_forces_order(self):
        # q reads p's write then overwrites: p's write precedes q's.
        h = parse_history("p: w(x)1 | q: r(x)1 w(x)2")
        rf = unique_reads_from(h)
        forced = forced_coherence_pairs(h, "x", rf)
        assert forced.orders(h.op("p", 0), h.op("q", 1))

    def test_no_rf_no_extra_edges(self):
        h = parse_history("p: w(x)1 | q: r(x)1 w(x)2")
        forced = forced_coherence_pairs(h, "x")
        assert not forced.orders(h.op("p", 0), h.op("q", 1))


class TestEnumeration:
    def test_counts_interleavings(self):
        h = parse_history("p: w(x)1 w(x)2 | q: w(x)3")
        orders = list(enumerate_coherence_orders(h))
        assert len(orders) == 3  # interleave chain of 2 with chain of 1

    def test_product_over_locations(self):
        h = parse_history("p: w(x)1 w(y)2 | q: w(x)3 w(y)4")
        orders = list(enumerate_coherence_orders(h))
        assert len(orders) == 4  # 2 per location

    def test_rf_pruning_reduces(self):
        h = parse_history("p: w(x)1 | q: r(x)1 w(x)2")
        rf = unique_reads_from(h)
        assert len(list(enumerate_coherence_orders(h, rf))) == 1
        assert len(list(enumerate_coherence_orders(h))) == 2

    def test_orders_respect_program_order(self):
        h = parse_history("p: w(x)1 w(x)2 | q: w(x)3")
        for order in enumerate_coherence_orders(h):
            chain = order["x"]
            pos = {w.uid: i for i, w in enumerate(chain)}
            assert pos[("p", 0)] < pos[("p", 1)]


class TestRelationAndPosition:
    def test_coherence_relation_pairs(self):
        h = parse_history("p: w(x)1 w(x)2")
        order = {"x": (h.op("p", 0), h.op("p", 1))}
        rel = coherence_relation(h, order)
        assert rel.orders(h.op("p", 0), h.op("p", 1))

    def test_coherence_position(self):
        h = parse_history("p: w(x)1 w(x)2")
        order = {"x": (h.op("p", 0), h.op("p", 1))}
        pos = coherence_position(order)
        assert pos[("p", 0)] == 0 and pos[("p", 1)] == 1
