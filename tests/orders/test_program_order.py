"""Tests for program order and the partial program order ``->ppo``."""

from repro.litmus import parse_history
from repro.orders import in_program_order, po_relation, ppo_base_pairs, ppo_relation


class TestProgramOrder:
    def test_in_program_order(self):
        h = parse_history("p: w(x)1 r(y)0")
        a, b = h.ops_of("p")
        assert in_program_order(a, b)
        assert not in_program_order(b, a)

    def test_cross_processor_unordered(self):
        h = parse_history("p: w(x)1 | q: w(y)2")
        (a,), (b,) = h.ops_of("p"), h.ops_of("q")
        assert not in_program_order(a, b)

    def test_po_relation_total_per_proc(self):
        h = parse_history("p: w(x)1 r(y)0 w(z)2")
        ops = h.ops_of("p")
        rel = po_relation(h)
        assert rel.orders(ops[0], ops[2])  # transitive pair materialized


class TestPartialProgramOrder:
    def test_write_read_same_location_ordered(self):
        h = parse_history("p: w(x)1 r(x)1")
        w, r = h.ops_of("p")
        assert ppo_relation(h).orders(w, r)

    def test_write_read_different_location_unordered(self):
        h = parse_history("p: w(x)1 r(y)0")
        w, r = h.ops_of("p")
        assert not ppo_relation(h).orders(w, r)

    def test_both_reads_ordered(self):
        h = parse_history("p: r(x)0 r(y)0")
        a, b = h.ops_of("p")
        assert ppo_relation(h).orders(a, b)

    def test_both_writes_ordered(self):
        h = parse_history("p: w(x)1 w(y)2")
        a, b = h.ops_of("p")
        assert ppo_relation(h).orders(a, b)

    def test_read_write_ordered(self):
        h = parse_history("p: r(x)0 w(y)1")
        a, b = h.ops_of("p")
        assert ppo_relation(h).orders(a, b)

    def test_transitive_case_from_paper(self):
        # w(x) ppo r(x) (same loc), r(x) ppo r(y) (both reads), so the
        # closure orders w(x) before r(y) even though that pair alone is
        # an unordered write->read on distinct locations.
        h = parse_history("p: w(x)1 r(x)1 r(y)0")
        w, rx, ry = h.ops_of("p")
        base = ppo_base_pairs(h)
        assert not base.orders(w, ry)
        assert ppo_relation(h).orders(w, ry)

    def test_rmw_orders_like_a_fence(self):
        h = parse_history("p: w(x)1 u(l)0->1 r(y)0")
        w, u, r = h.ops_of("p")
        rel = ppo_relation(h)
        assert rel.orders(w, u) and rel.orders(u, r)
        # And through the RMW, the write is ordered before the read.
        assert rel.orders(w, r)

    def test_ppo_never_crosses_processors(self):
        h = parse_history("p: w(x)1 | q: r(x)1")
        (w,), (r,) = h.ops_of("p"), h.ops_of("q")
        assert not ppo_relation(h).orders(w, r)
