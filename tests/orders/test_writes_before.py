"""Tests for reads-from analysis and the writes-before order."""

import pytest

from repro.core import AmbiguousValueError
from repro.litmus import parse_history
from repro.orders import (
    reads_from_candidates,
    reads_from_choices,
    unique_reads_from,
    wb_relation,
)
from repro.orders.writes_before import unambiguous_reads_from


class TestCandidates:
    def test_single_candidate(self):
        h = parse_history("p: w(x)1 | q: r(x)1")
        (r,) = h.ops_of("q")
        (w,) = h.ops_of("p")
        assert reads_from_candidates(h)[r] == (w,)

    def test_initial_candidate(self):
        h = parse_history("p: r(x)0")
        (r,) = h.ops_of("p")
        assert reads_from_candidates(h)[r] == (None,)

    def test_no_candidate(self):
        h = parse_history("p: r(x)7")
        (r,) = h.ops_of("p")
        assert reads_from_candidates(h)[r] == ()

    def test_duplicate_values_give_two_candidates(self):
        h = parse_history("p: w(x)1 | q: w(x)1 | r: r(x)1")
        (r,) = h.ops_of("r")
        assert len(reads_from_candidates(h)[r]) == 2

    def test_initial_vs_written_zero_ambiguity(self):
        h = parse_history("p: w(x)0 | q: r(x)0")
        (r,) = h.ops_of("q")
        assert len(reads_from_candidates(h)[r]) == 2

    def test_rmw_never_reads_own_write(self):
        h = parse_history("p: u(x)0->1 r(x)1")
        u, r = h.ops_of("p")
        cands = reads_from_candidates(h)
        assert cands[r] == (u,)
        assert cands[u] == (None,)  # reads initial, not itself


class TestUniqueAndUnambiguous:
    def test_unique_on_distinct_values(self):
        h = parse_history("p: w(x)1 w(y)2 | q: r(x)1 r(y)0")
        rf = unique_reads_from(h)
        rx, ry = h.ops_of("q")
        assert rf[rx] == h.op("p", 0)
        assert rf[ry] is None

    def test_unique_raises_on_ambiguity(self):
        h = parse_history("p: w(x)0 | q: r(x)0")
        with pytest.raises(AmbiguousValueError):
            unique_reads_from(h)

    def test_unambiguous_returns_none_on_ambiguity(self):
        h = parse_history("p: w(x)0 | q: r(x)0")
        assert unambiguous_reads_from(h) is None

    def test_unambiguous_on_clean_history(self):
        h = parse_history("p: w(x)1 | q: r(x)1")
        rf = unambiguous_reads_from(h)
        assert rf is not None and len(rf) == 1

    def test_read_of_unwritten_value_excluded(self):
        h = parse_history("p: r(x)7")
        rf = unambiguous_reads_from(h)
        assert rf == {}  # no entry; checkers reject the history


class TestChoices:
    def test_enumerates_product(self):
        h = parse_history("p: w(x)0 | q: r(x)0 r(x)0")
        choices = list(reads_from_choices(h))
        assert len(choices) == 4  # 2 candidates per read

    def test_empty_when_read_unsatisfiable(self):
        h = parse_history("p: r(x)7")
        assert list(reads_from_choices(h)) == []


class TestWbRelation:
    def test_edges_follow_reads_from(self):
        h = parse_history("p: w(x)1 | q: r(x)1 w(y)2 | r: r(y)2")
        rel = wb_relation(h)
        assert rel.orders(h.op("p", 0), h.op("q", 0))
        assert rel.orders(h.op("q", 1), h.op("r", 0))
        assert not rel.orders(h.op("p", 0), h.op("r", 0))

    def test_initial_reads_contribute_no_edges(self):
        h = parse_history("p: r(x)0")
        assert len(wb_relation(h)) == 0
