"""Tests for the causal order ``->co = (po ∪ wb)+``."""

from repro.litmus import parse_history
from repro.orders import causal_base_pairs, causal_relation


class TestCausalOrder:
    def test_program_order_included(self):
        h = parse_history("p: w(x)1 w(y)2")
        a, b = h.ops_of("p")
        assert causal_relation(h).orders(a, b)

    def test_writes_before_included(self):
        h = parse_history("p: w(x)1 | q: r(x)1")
        assert causal_relation(h).orders(h.op("p", 0), h.op("q", 0))

    def test_transitivity_across_processors(self):
        # The message-relay chain: p writes, q observes and writes, r
        # observes q.  p's write is causally before r's read.
        h = parse_history("p: w(x)1 | q: r(x)1 w(y)2 | r: r(y)2")
        assert causal_relation(h).orders(h.op("p", 0), h.op("r", 0))

    def test_base_pairs_not_transitive(self):
        h = parse_history("p: w(x)1 | q: r(x)1 w(y)2 | r: r(y)2")
        base = causal_base_pairs(h)
        assert not base.orders(h.op("p", 0), h.op("r", 0))

    def test_concurrent_writes_unordered(self):
        h = parse_history("p: w(x)1 | q: w(y)2")
        rel = causal_relation(h)
        assert not rel.orders(h.op("p", 0), h.op("q", 0))
        assert not rel.orders(h.op("q", 0), h.op("p", 0))

    def test_figure4_chain(self):
        # Paper Figure 4: once r reads z=1 it is causally bound to see y=1:
        # w(y)1 ->po... actually w(y)1 ->co w(z)1 via q, and w(z)1 ->wb r_r(z)1.
        h = parse_history(
            "p: w(x)1 w(y)1 | q: r(y)1 w(z)1 r(x)2 | r: w(x)2 r(x)1 r(z)1 r(y)1"
        )
        rel = causal_relation(h)
        w_y = h.op("p", 1)
        r_z = h.op("r", 2)
        assert rel.orders(w_y, r_z)

    def test_explicit_reads_from_respected(self):
        h = parse_history("p: w(x)1 | q: r(x)1")
        rf = {h.op("q", 0): h.op("p", 0)}
        rel = causal_relation(h, rf)
        assert rel.orders(h.op("p", 0), h.op("q", 0))
