"""Figure 5 reproduced in miniature: classification over the 2×2 space."""

import pytest

from repro.lattice import (
    FIGURE5_EDGES,
    HistorySpace,
    canonical_key,
    classify_histories,
    containment_violations,
    empirical_hasse,
    enumerate_histories,
    hasse_levels,
    paper_hasse,
    separating_witnesses,
)

MODELS = ("SC", "TSO", "PC", "Causal", "PRAM")


@pytest.fixture(scope="module")
def small_space_result():
    space = HistorySpace(procs=2, ops_per_proc=2)
    seen, unique = set(), []
    for h in enumerate_histories(space):
        k = canonical_key(h)
        if k not in seen:
            seen.add(k)
            unique.append(h)
    return classify_histories(unique, MODELS)


class TestFigure5OnSmallSpace:
    def test_no_containment_violations(self, small_space_result):
        assert containment_violations(small_space_result) == {}

    def test_counts_monotone_down_the_lattice(self, small_space_result):
        counts = small_space_result.counts()
        assert counts["SC"] < counts["TSO"]
        assert counts["TSO"] <= counts["PC"]
        assert counts["TSO"] <= counts["Causal"]
        assert counts["PC"] <= counts["PRAM"]
        assert counts["Causal"] <= counts["PRAM"]

    def test_strictness_witnessed_in_space(self, small_space_result):
        wits = separating_witnesses(small_space_result)
        for edge in FIGURE5_EDGES:
            assert wits[edge] is not None, f"no separator for {edge} in space"

    def test_pc_causal_incomparable(self, small_space_result):
        assert small_space_result.incomparable("PC", "Causal")

    def test_empirical_hasse_matches_paper(self, small_space_result):
        measured = empirical_hasse(small_space_result)
        expected = paper_hasse()
        assert set(measured.edges()) == set(expected.edges())

    def test_hasse_levels_start_with_sc(self, small_space_result):
        levels = hasse_levels(empirical_hasse(small_space_result))
        assert levels[0] == ["SC"]
        assert "PRAM" in levels[-1]


class TestClassificationResultAPI:
    def test_contains_and_strict(self, small_space_result):
        assert small_space_result.contains("SC", "PRAM")
        assert small_space_result.strictly_contains("SC", "PRAM")
        assert not small_space_result.contains("PRAM", "SC")

    def test_containment_matrix_shape(self, small_space_result):
        matrix = small_space_result.containment_matrix()
        assert len(matrix) == len(MODELS) * (len(MODELS) - 1)
        assert matrix[("SC", "TSO")] is True
        assert matrix[("TSO", "SC")] is False


class TestEnginePath:
    def test_engine_matches_direct_classification(self, small_space_result):
        from repro.engine import CheckEngine

        engine_result = classify_histories(
            small_space_result.histories, MODELS, engine=CheckEngine()
        )
        assert engine_result.allowed == small_space_result.allowed

    def test_parallel_engine_matches_too(self, small_space_result):
        from repro.engine import CheckEngine

        engine_result = classify_histories(
            small_space_result.histories, MODELS, engine=CheckEngine(jobs=2)
        )
        assert engine_result.allowed == small_space_result.allowed
