"""Tests for history-space enumeration and canonicalization."""

import itertools

import pytest

from repro.lattice import HistorySpace, canonical_key, enumerate_histories, space_size


class TestHistorySpace:
    def test_slots(self):
        assert HistorySpace(procs=2, ops_per_proc=3).slots == 6

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            HistorySpace(procs=0)
        with pytest.raises(ValueError):
            HistorySpace(locations=())


class TestEnumeration:
    def test_count_matches_formula(self):
        space = HistorySpace(procs=2, ops_per_proc=1, locations=("x",))
        histories = list(enumerate_histories(space))
        assert len(histories) == space_size(space)

    def test_small_space_by_hand(self):
        # 1 proc, 1 op, 1 loc: w(x)1, r(x)0 — 2 histories.
        space = HistorySpace(procs=1, ops_per_proc=1, locations=("x",))
        hs = list(enumerate_histories(space))
        assert len(hs) == 2

    def test_write_values_distinct(self):
        space = HistorySpace(procs=2, ops_per_proc=2)
        for h in itertools.islice(enumerate_histories(space), 200):
            assert h.has_distinct_write_values()

    def test_reads_always_have_candidates(self):
        from repro.orders import reads_from_candidates

        space = HistorySpace(procs=2, ops_per_proc=2)
        for h in itertools.islice(enumerate_histories(space), 200):
            for op, cands in reads_from_candidates(h).items():
                assert cands, f"read with no candidate in {h}"

    def test_default_2x2_size(self):
        space = HistorySpace(procs=2, ops_per_proc=2)
        assert space_size(space) == sum(1 for _ in enumerate_histories(space))


class TestCanonicalization:
    def test_proc_renaming_collapses(self):
        from repro.litmus import parse_history

        a = parse_history("p0: w(x)1 | p1: r(x)1")
        b = parse_history("p0: r(x)2 | p1: w(x)2")  # roles swapped
        assert canonical_key(a) == canonical_key(b)

    def test_location_renaming_collapses(self):
        from repro.litmus import parse_history

        a = parse_history("p0: w(x)1 r(y)0 | p1: w(y)2 r(x)0")
        b = parse_history("p0: w(y)1 r(x)0 | p1: w(x)2 r(y)0")
        assert canonical_key(a) == canonical_key(b)

    def test_different_shapes_distinct(self):
        from repro.litmus import parse_history

        a = parse_history("p0: w(x)1 | p1: r(x)1")
        b = parse_history("p0: w(x)1 | p1: r(x)0")
        assert canonical_key(a) != canonical_key(b)

    def test_dedup_reduces_default_space(self):
        space = HistorySpace(procs=2, ops_per_proc=2)
        total = 0
        seen = set()
        for h in enumerate_histories(space):
            total += 1
            seen.add(canonical_key(h))
        assert len(seen) < total
        # Measured constant, guards against canonicalization regressions.
        assert len(seen) == 210
