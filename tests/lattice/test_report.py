"""Tests for the markdown lattice report."""

from repro.lattice import (
    HistorySpace,
    canonical_key,
    classify_histories,
    enumerate_histories,
    lattice_report,
)


def small_result():
    space = HistorySpace(procs=2, ops_per_proc=2)
    seen, hs = set(), []
    for h in enumerate_histories(space):
        k = canonical_key(h)
        if k not in seen:
            seen.add(k)
            hs.append(h)
    return classify_histories(hs, ("SC", "TSO", "PC", "Causal", "PRAM"))


class TestLatticeReport:
    def test_sections_present(self):
        report = lattice_report(small_result())
        for heading in (
            "# Memory-model lattice survey",
            "## Allowed-history counts",
            "## Claimed containments",
            "## Pairwise containment matrix",
            "## Measured Hasse diagram",
        ):
            assert heading in report

    def test_counts_rendered(self):
        report = lattice_report(small_result())
        assert "| SC | 140 | 66.7% |" in report

    def test_all_claims_hold(self):
        report = lattice_report(small_result())
        assert "**NO**" not in report
        assert report.count("| yes |") >= 5

    def test_witnesses_inlined(self):
        report = lattice_report(small_result())
        assert "yes — `" in report  # at least one inline witness

    def test_matrix_diagonal(self):
        report = lattice_report(small_result())
        assert "·" in report and "✓" in report and "✗" in report

    def test_custom_title(self):
        report = lattice_report(small_result(), title="My survey")
        assert report.startswith("# My survey")

    def test_cli_report_flag(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "r.md"
        rc = main(["lattice", "--report", str(out)])
        assert rc == 0
        assert out.read_text().startswith("# Memory-model lattice survey")
