"""The registry-derived lattice: :func:`extended_edges` and its consumers.

The paper's Figure 5 relates five memories; the registry holds twenty.
``extended_edges`` derives the full claimed lattice from what is actually
registered, so these tests pin three things: the derivation's shape (the
paper's sub-lattice survives verbatim, every family member gets its
edges, incomparable pairs get none), its soundness on the probe set, and
the plumbing fix — a model registered *without* bespoke edges anywhere
still participates in containment checking.
"""

import pytest

from repro.checking.models import MODELS, model_names
from repro.lattice import (
    FIGURE5_EDGES,
    classify_histories,
    containment_violations,
    extended_edges,
    separating_witnesses,
)
from repro.staticcheck.speclint import _default_probes


@pytest.fixture(scope="module")
def probe_result():
    return classify_histories(_default_probes(), model_names())


class TestEdgeDerivation:
    def test_figure5_sublattice_survives_verbatim(self):
        edges = extended_edges()
        for edge in FIGURE5_EDGES:
            assert edge in edges

    def test_endpoints_are_registered_models(self):
        registered = set(model_names())
        for stronger, weaker in extended_edges():
            assert stronger in registered and weaker in registered

    def test_every_family_member_has_edges(self):
        covered = {name for edge in extended_edges() for name in edge}
        for name in (
            "read-your-writes",
            "monotonic-reads",
            "monotonic-writes",
            "writes-follow-reads",
            "session-causal",
            "partition-2",
            "partition-3",
        ):
            assert name in covered, f"{name} missing from the lattice"

    def test_partition_family_edges_are_derived(self):
        edges = extended_edges()
        for arity in (2, 3):
            assert ("SC", f"partition-{arity}") in edges
            assert (f"partition-{arity}", "Coherence") in edges

    def test_partition_arities_claim_no_mutual_edge(self):
        # The round-robin block maps of different arity stop nesting on
        # four locations, so neither direction is sound.
        edges = extended_edges()
        assert ("partition-2", "partition-3") not in edges
        assert ("partition-3", "partition-2") not in edges

    def test_session_meet_sits_between_causal_and_the_guarantees(self):
        edges = extended_edges()
        assert ("Causal", "session-causal") in edges
        for guarantee in (
            "read-your-writes",
            "monotonic-reads",
            "monotonic-writes",
            "writes-follow-reads",
        ):
            assert ("session-causal", guarantee) in edges
        # PRAM's program order lacks the cross-processor wfr edges.
        assert ("PRAM", "writes-follow-reads") not in edges

    def test_panel_restriction_filters_both_endpoints(self):
        panel = ("SC", "TSO", "PRAM")
        for stronger, weaker in extended_edges(panel):
            assert stronger in panel and weaker in panel
        assert ("SC", "TSO") in extended_edges(panel)

    def test_result_is_duplicate_free(self):
        edges = extended_edges()
        assert len(edges) == len(set(edges))


class TestEdgeSoundness:
    def test_no_containment_violations_on_probes(self, probe_result):
        # Every claimed edge must hold on the speclint probe set — the
        # same histories that certify the registry's specs pairwise
        # distinct certify the lattice's claims sound.
        assert containment_violations(probe_result, extended_edges()) == {}

    def test_family_edges_witnessed_strict_on_probes(self, probe_result):
        wits = separating_witnesses(probe_result, extended_edges())
        for edge in (
            ("Causal", "session-causal"),
            ("SC", "partition-2"),
            ("SC", "partition-3"),
            ("partition-2", "Coherence"),
            ("partition-3", "Coherence"),
        ):
            assert wits[edge] is not None, f"no separator for {edge}"


class TestEdgelessModelsStillChecked:
    def test_a_model_without_edges_is_still_classified(self, probe_result):
        # TSO-axiomatic is registered but appears in no claim table; the
        # registry-derived default panel must still containment-check it
        # rather than silently dropping it (the old hard-coded
        # FIGURE5_EDGES defaults assumed the paper's model list).
        covered = {name for edge in extended_edges() for name in edge}
        assert "TSO-axiomatic" in model_names()
        assert "TSO-axiomatic" not in covered
        assert "TSO-axiomatic" in probe_result.allowed
        matrix = probe_result.containment_matrix()
        assert ("TSO-axiomatic", "SC") in matrix

    def test_registering_without_edges_never_breaks_derivation(self):
        # extended_edges only emits claims whose two endpoints are
        # registered, so a panel naming an edge-free model is inert.
        assert extended_edges(("TSO-axiomatic",)) == ()
