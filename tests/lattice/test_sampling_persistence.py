"""Tests for sampled classification and result persistence."""

import numpy as np
import pytest

from repro.core import ParseError
from repro.lattice import (
    FIGURE5_EDGES,
    HistorySpace,
    classify_histories,
    containment_violations,
)
from repro.lattice.persistence import load_classification, save_classification
from repro.lattice.sampling import classify_sample, sample_history, sample_space
from repro.orders import reads_from_candidates


class TestSampling:
    def test_sample_structure(self):
        space = HistorySpace(procs=3, ops_per_proc=3, locations=("x", "y"))
        rng = np.random.default_rng(1)
        h = sample_history(space, rng)
        assert len(h.procs) == 3
        assert all(len(h.ops_of(p)) == 3 for p in h.procs)
        assert h.has_distinct_write_values()

    def test_samples_never_trivially_illegal(self):
        space = HistorySpace(procs=2, ops_per_proc=4)
        rng = np.random.default_rng(2)
        for h in sample_space(space, 30, rng):
            for op, cands in reads_from_candidates(h).items():
                assert cands

    def test_reproducible_by_seed(self):
        space = HistorySpace(procs=2, ops_per_proc=3)
        a = sample_space(space, 10, np.random.default_rng(5))
        b = sample_space(space, 10, np.random.default_rng(5))
        assert a == b

    def test_classify_sample_honors_figure5(self):
        # The statistical counterpart of the exhaustive 2x2 experiment,
        # on the 2x3 space the exhaustive path cannot afford.
        space = HistorySpace(procs=2, ops_per_proc=3)
        result = classify_sample(
            space, 40, ("SC", "TSO", "PC", "Causal", "PRAM"), seed=7
        )
        assert containment_violations(result, FIGURE5_EDGES) == {}


class TestPersistence:
    def make_result(self):
        space = HistorySpace(procs=2, ops_per_proc=2)
        histories = sample_space(space, 8, np.random.default_rng(3))
        return classify_histories(histories, ("SC", "PRAM"))

    def test_roundtrip(self, tmp_path):
        result = self.make_result()
        path = tmp_path / "c.json"
        save_classification(result, path)
        loaded = load_classification(path)
        assert loaded.models == result.models
        assert loaded.histories == result.histories
        assert loaded.allowed == result.allowed

    def test_loaded_result_behaves(self, tmp_path):
        result = self.make_result()
        path = tmp_path / "c.json"
        save_classification(result, path)
        loaded = load_classification(path)
        assert loaded.contains("SC", "PRAM")
        assert loaded.counts() == result.counts()

    def test_bad_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ParseError):
            load_classification(path)

    def test_version_checked(self, tmp_path):
        result = self.make_result()
        path = tmp_path / "c.json"
        save_classification(result, path)
        import json

        payload = json.loads(path.read_text())
        payload["version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(ParseError):
            load_classification(path)

    def test_missing_verdicts_rejected(self, tmp_path):
        result = self.make_result()
        path = tmp_path / "c.json"
        save_classification(result, path)
        import json

        payload = json.loads(path.read_text())
        del payload["allowed"]["SC"]
        path.write_text(json.dumps(payload))
        with pytest.raises(ParseError):
            load_classification(path)
