"""Unit tests for views and legality (the paper's core definition)."""

import pytest

from repro.core import (
    HistoryBuilder,
    IllegalViewError,
    View,
    first_legality_violation,
    is_legal_sequence,
    read,
    rmw,
    write,
)


def ops(*specs):
    """Build operations from (proc, index, kind, loc, value[, read_value])."""
    out = []
    for spec in specs:
        if spec[2] == "w":
            out.append(write(spec[0], spec[1], spec[3], spec[4]))
        elif spec[2] == "r":
            out.append(read(spec[0], spec[1], spec[3], spec[4]))
        else:
            out.append(rmw(spec[0], spec[1], spec[3], spec[4], spec[5]))
    return out


class TestLegality:
    def test_empty_sequence_is_legal(self):
        assert is_legal_sequence([])

    def test_read_initial_value(self):
        assert is_legal_sequence(ops(("p", 0, "r", "x", 0)))

    def test_read_wrong_initial_value(self):
        violation = first_legality_violation(ops(("p", 0, "r", "x", 5)))
        assert violation is not None
        pos, op, expected = violation
        assert pos == 0 and expected == 0

    def test_read_most_recent_write(self):
        seq = ops(("p", 0, "w", "x", 1), ("q", 0, "w", "x", 2), ("p", 1, "r", "x", 2))
        assert is_legal_sequence(seq)

    def test_read_stale_write_illegal(self):
        seq = ops(("p", 0, "w", "x", 1), ("q", 0, "w", "x", 2), ("p", 1, "r", "x", 1))
        violation = first_legality_violation(seq)
        assert violation is not None and violation[2] == 2

    def test_locations_independent(self):
        seq = ops(("p", 0, "w", "x", 1), ("p", 1, "r", "y", 0))
        assert is_legal_sequence(seq)

    def test_rmw_reads_then_writes(self):
        seq = ops(("p", 0, "w", "x", 1), ("p", 1, "u", "x", 1, 2), ("p", 2, "r", "x", 2))
        assert is_legal_sequence(seq)

    def test_rmw_wrong_read_half(self):
        seq = ops(("p", 0, "w", "x", 1), ("p", 1, "u", "x", 0, 2))
        assert first_legality_violation(seq) is not None

    def test_custom_initial_value(self):
        assert is_legal_sequence(ops(("p", 0, "r", "x", 7)), initial=7)


class TestView:
    def make_history(self):
        return (
            HistoryBuilder()
            .proc("p").write("x", 1).read("y", 0)
            .proc("q").write("y", 1).read("x", 0)
            .build()
        )

    def test_valid_tso_view(self):
        h = self.make_history()
        # S_{p+w} from the paper's Section 3.2 worked example.
        seq = [h.op("p", 1), h.op("p", 0), h.op("q", 0)]
        v = View("p", seq, h)
        assert len(v) == 3
        assert v.orders(h.op("p", 1), h.op("q", 0))

    def test_illegal_view_rejected(self):
        h = self.make_history()
        seq = [h.op("q", 0), h.op("p", 0), h.op("p", 1)]  # r(y)0 after w(y)1
        with pytest.raises(IllegalViewError):
            View("p", seq, h)

    def test_missing_own_op_rejected(self):
        h = self.make_history()
        with pytest.raises(IllegalViewError):
            View("p", [h.op("p", 0)], h)

    def test_duplicate_op_rejected(self):
        h = self.make_history()
        with pytest.raises(IllegalViewError):
            View("p", [h.op("p", 0), h.op("p", 0), h.op("p", 1)], h)

    def test_foreign_op_rejected(self):
        h = self.make_history()
        foreign = write("p", 7, "z", 9)
        with pytest.raises(IllegalViewError):
            View("p", [h.op("p", 0), h.op("p", 1), foreign], h)

    def test_restriction_operators(self):
        h = self.make_history()
        v = View("p", [h.op("p", 1), h.op("p", 0), h.op("q", 0)], h)
        assert [op.kind.value for op in v.writes_only] == ["w", "w"]
        assert v.writes_to("x") == (h.op("p", 0),)

    def test_position_of_absent_op_raises(self):
        h = self.make_history()
        v = View("p", [h.op("p", 1), h.op("p", 0), h.op("q", 0)], h)
        with pytest.raises(IllegalViewError):
            v.position(h.op("q", 1))

    def test_contains(self):
        h = self.make_history()
        v = View("p", [h.op("p", 1), h.op("p", 0), h.op("q", 0)], h)
        assert h.op("p", 0) in v
        assert h.op("q", 1) not in v

    def test_labeled_only(self):
        h = (
            HistoryBuilder()
            .proc("p").write("s", 1, labeled=True).write("x", 2)
            .build()
        )
        v = View("p", list(h.ops_of("p")), h)
        assert [op.location for op in v.labeled_only] == ["s"]
