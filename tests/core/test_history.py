"""Unit tests for processor and system histories."""

import pytest

from repro.core import (
    HistoryBuilder,
    HistoryError,
    ProcessorHistory,
    SystemHistory,
    read,
    write,
)


def sb_history():
    return (
        HistoryBuilder()
        .proc("p").write("x", 1).read("y", 0)
        .proc("q").write("y", 1).read("x", 0)
        .build()
    )


class TestProcessorHistory:
    def test_program_order_is_sequence_order(self):
        h = ProcessorHistory("p", [write("p", 0, "x", 1), read("p", 1, "y", 0)])
        assert [op.index for op in h] == [0, 1]
        assert len(h) == 2

    def test_wrong_proc_rejected(self):
        with pytest.raises(HistoryError):
            ProcessorHistory("p", [write("q", 0, "x", 1)])

    def test_wrong_index_rejected(self):
        with pytest.raises(HistoryError):
            ProcessorHistory("p", [write("p", 1, "x", 1)])

    def test_reads_writes_partition(self):
        h = ProcessorHistory("p", [write("p", 0, "x", 1), read("p", 1, "y", 0)])
        assert [op.kind.value for op in h.writes] == ["w"]
        assert [op.kind.value for op in h.reads] == ["r"]

    def test_labeled_subsequence(self):
        h = ProcessorHistory(
            "p", [write("p", 0, "x", 1, labeled=True), read("p", 1, "y", 0)]
        )
        assert len(h.labeled) == 1

    def test_equality(self):
        a = ProcessorHistory("p", [write("p", 0, "x", 1)])
        b = ProcessorHistory("p", [write("p", 0, "x", 1)])
        assert a == b and hash(a) == hash(b)


class TestSystemHistory:
    def test_accessors(self):
        h = sb_history()
        assert h.procs == ("p", "q")
        assert len(h.operations) == 4
        assert h.locations == ("x", "y")
        assert len(h.reads) == 2 and len(h.writes) == 2

    def test_duplicate_procs_rejected(self):
        ph = ProcessorHistory("p", [write("p", 0, "x", 1)])
        with pytest.raises(HistoryError):
            SystemHistory([ph, ph])

    def test_op_lookup(self):
        h = sb_history()
        assert h.op("p", 0).location == "x"
        with pytest.raises(HistoryError):
            h.op("p", 9)

    def test_remote_writes(self):
        h = sb_history()
        remote = h.remote_writes("p")
        assert len(remote) == 1 and remote[0].proc == "q"

    def test_writes_to_and_reads_of(self):
        h = sb_history()
        assert len(h.writes_to("x")) == 1
        assert len(h.reads_of("x")) == 1

    def test_relabel(self):
        h = sb_history().relabel(lambda op: op.is_write)
        assert all(op.labeled for op in h.writes)
        assert not any(op.labeled for op in h.reads if op.is_pure_read)

    def test_distinct_write_values(self):
        assert sb_history().has_distinct_write_values()
        dup = (
            HistoryBuilder()
            .proc("p").write("x", 1)
            .proc("q").write("x", 1)
            .build()
        )
        assert not dup.has_distinct_write_values()

    def test_distinct_values_per_location(self):
        # Same value to *different* locations is fine.
        h = (
            HistoryBuilder().proc("p").write("x", 1).write("y", 1).build()
        )
        assert h.has_distinct_write_values()

    def test_project_reindexes(self):
        h = (
            HistoryBuilder()
            .proc("p").write("x", 1).write("s", 2, labeled=True).read("y", 0)
            .proc("q").write("y", 3, labeled=True)
            .build()
        )
        sub, back = h.project(lambda op: op.labeled)
        assert len(sub.operations) == 2
        # Reindexed densely:
        assert [op.index for op in sub.ops_of("p")] == [0]
        # Back-map returns the original operation.
        orig = back[sub.ops_of("p")[0].uid]
        assert orig.index == 1 and orig.location == "s"

    def test_project_drops_empty_procs(self):
        h = sb_history()
        sub, _ = h.project(lambda op: op.proc == "p")
        assert sub.procs == ("p",)

    def test_equality_and_hash(self):
        assert sb_history() == sb_history()
        assert hash(sb_history()) == hash(sb_history())

    def test_deterministic_proc_order(self):
        h = (
            HistoryBuilder()
            .proc("z").write("x", 1)
            .proc("a").write("y", 2)
            .build()
        )
        assert h.procs == ("a", "z")


class TestHistoryBuilder:
    def test_requires_proc_first(self):
        with pytest.raises(HistoryError):
            HistoryBuilder().write("x", 1)

    def test_aliases(self):
        h = HistoryBuilder().proc("p").w("x", 1).r("x", 1).u("x", 1, 2).build()
        kinds = [op.kind.value for op in h.ops_of("p")]
        assert kinds == ["w", "r", "u"]

    def test_indices_assigned_sequentially(self):
        h = HistoryBuilder().proc("p").w("x", 1).r("y", 0).build()
        assert [op.index for op in h.ops_of("p")] == [0, 1]
