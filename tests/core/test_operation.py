"""Unit tests for the Operation value type."""

import pytest

from repro.core import MalformedOperationError, Operation, OpKind, read, rmw, write


class TestConstruction:
    def test_read_constructor(self):
        op = read("p", 0, "x", 5)
        assert op.kind is OpKind.READ
        assert op.proc == "p" and op.index == 0
        assert op.location == "x" and op.value == 5
        assert not op.labeled

    def test_write_constructor(self):
        op = write("q", 3, "y", 7, labeled=True)
        assert op.kind is OpKind.WRITE
        assert op.labeled

    def test_rmw_constructor(self):
        op = rmw("p", 1, "l", 0, 1)
        assert op.kind is OpKind.RMW
        assert op.read_value == 0 and op.value == 1

    def test_negative_index_rejected(self):
        with pytest.raises(MalformedOperationError):
            Operation("p", -1, OpKind.READ, "x", 0)

    def test_rmw_requires_read_value(self):
        with pytest.raises(MalformedOperationError):
            Operation("p", 0, OpKind.RMW, "x", 1)

    def test_plain_ops_reject_read_value(self):
        with pytest.raises(MalformedOperationError):
            Operation("p", 0, OpKind.WRITE, "x", 1, read_value=0)

    def test_kind_must_be_opkind(self):
        with pytest.raises(MalformedOperationError):
            Operation("p", 0, "w", "x", 1)  # type: ignore[arg-type]


class TestClassification:
    def test_read_halves(self):
        assert read("p", 0, "x", 1).is_read
        assert not read("p", 0, "x", 1).is_write
        assert rmw("p", 0, "x", 0, 1).is_read

    def test_write_halves(self):
        assert write("p", 0, "x", 1).is_write
        assert not write("p", 0, "x", 1).is_read
        assert rmw("p", 0, "x", 0, 1).is_write

    def test_pure_flags(self):
        assert read("p", 0, "x", 1).is_pure_read
        assert not rmw("p", 0, "x", 0, 1).is_pure_read
        assert write("p", 0, "x", 1).is_pure_write
        assert not rmw("p", 0, "x", 0, 1).is_pure_write

    def test_acquire_release(self):
        assert read("p", 0, "x", 1, labeled=True).is_acquire
        assert write("p", 0, "x", 1, labeled=True).is_release
        assert not read("p", 0, "x", 1).is_acquire
        assert not write("p", 0, "x", 1).is_release
        # An RMW is both when labeled (it has both halves).
        op = rmw("p", 0, "x", 0, 1, labeled=True)
        assert op.is_acquire and op.is_release


class TestValues:
    def test_value_read(self):
        assert read("p", 0, "x", 4).value_read == 4
        assert rmw("p", 0, "x", 2, 9).value_read == 2

    def test_value_written(self):
        assert write("p", 0, "x", 4).value_written == 4
        assert rmw("p", 0, "x", 2, 9).value_written == 9

    def test_value_read_on_write_raises(self):
        with pytest.raises(MalformedOperationError):
            _ = write("p", 0, "x", 1).value_read

    def test_value_written_on_read_raises(self):
        with pytest.raises(MalformedOperationError):
            _ = read("p", 0, "x", 1).value_written


class TestIdentity:
    def test_uid(self):
        assert read("p", 2, "x", 0).uid == ("p", 2)

    def test_equality_and_hash(self):
        a = read("p", 0, "x", 1)
        b = read("p", 0, "x", 1)
        assert a == b and hash(a) == hash(b)
        assert a != write("p", 0, "x", 1)

    def test_with_labeled(self):
        op = read("p", 0, "x", 1)
        lab = op.with_labeled(True)
        assert lab.labeled and lab.uid == op.uid
        assert not op.labeled  # original untouched

    def test_str_forms(self):
        assert str(write("p", 0, "x", 1)) == "w_p(x)1"
        assert str(read("q", 1, "y", 0, labeled=True)) == "r*_q(y)0"
        assert str(rmw("p", 0, "l", 0, 1)) == "u_p(l)0->1"
