"""Round-trip tests for the JSON wire format."""

import pytest

from repro.core import HistoryBuilder, ParseError, View
from repro.core.serialization import (
    FORMAT_VERSION,
    history_from_dict,
    history_from_json,
    history_to_dict,
    history_to_json,
    operation_from_dict,
    operation_to_dict,
    view_from_dict,
    view_to_dict,
)
from repro.core.operation import read, rmw, write


def sample_history():
    return (
        HistoryBuilder()
        .proc("p").write("x", 1, labeled=True).rmw("l", 0, 1).read("y", 0)
        .proc("q").write("y", 2)
        .build()
    )


class TestOperationCodec:
    def test_roundtrip_read(self):
        op = read("p", 0, "x", 3, labeled=True)
        assert operation_from_dict(operation_to_dict(op)) == op

    def test_roundtrip_rmw(self):
        op = rmw("p", 1, "l", 0, 1)
        assert operation_from_dict(operation_to_dict(op)) == op

    def test_compact_encoding_omits_defaults(self):
        d = operation_to_dict(write("p", 0, "x", 1))
        assert "labeled" not in d and "read_value" not in d

    def test_malformed_rejected(self):
        with pytest.raises(ParseError):
            operation_from_dict({"proc": "p"})

    def test_bad_kind_rejected(self):
        d = operation_to_dict(read("p", 0, "x", 1))
        d["kind"] = "z"
        with pytest.raises(ParseError):
            operation_from_dict(d)


class TestHistoryCodec:
    def test_roundtrip_dict(self):
        h = sample_history()
        assert history_from_dict(history_to_dict(h)) == h

    def test_roundtrip_json(self):
        h = sample_history()
        assert history_from_json(history_to_json(h)) == h

    def test_version_checked(self):
        d = history_to_dict(sample_history())
        d["version"] = FORMAT_VERSION + 1
        with pytest.raises(ParseError):
            history_from_dict(d)

    def test_invalid_json_rejected(self):
        with pytest.raises(ParseError):
            history_from_json("{not json")

    def test_missing_processors_rejected(self):
        with pytest.raises(ParseError):
            history_from_dict({"version": FORMAT_VERSION})


class TestViewCodec:
    def test_roundtrip(self):
        h = sample_history()
        v = View("q", [h.op("q", 0), h.op("p", 0), h.op("p", 1)], None)
        again = view_from_dict(view_to_dict(v))
        assert list(again) == list(v) and again.proc == "q"

    def test_view_validated_against_history(self):
        h = sample_history()
        v = View("q", [h.op("q", 0), h.op("p", 0), h.op("p", 1)], None)
        d = view_to_dict(v)
        d["ops"][0]["value"] = 99  # now a foreign operation
        with pytest.raises(Exception):
            view_from_dict(d, h)
