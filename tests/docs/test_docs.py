"""Docs hygiene, enforced by the tier-1 suite.

Three contracts: the generated blocks in ``docs/`` match what the live
code produces (so the CLI reference cannot drift from the argparse tree
and the worked trace cannot drift from the renderer), every intra-repo
markdown link resolves, and the code examples in the README and
``docs/framework.md`` pass as doctests.
"""

import doctest
from pathlib import Path

import pytest

from repro.obs.docgen import (
    GENERATED_BLOCKS,
    broken_links,
    cli_reference_markdown,
    extract_block,
    inject_block,
    iter_markdown_links,
    stale_blocks,
)

ROOT = Path(__file__).resolve().parents[2]


class TestGeneratedBlocks:
    @pytest.mark.parametrize(
        "rel,name",
        [(rel, name) for rel, blocks in GENERATED_BLOCKS.items() for name in blocks],
    )
    def test_committed_block_matches_live_code(self, rel, name):
        text = (ROOT / rel).read_text(encoding="utf-8")
        committed = extract_block(text, name)
        assert committed is not None, f"{rel} lost its {name!r} block"
        assert committed == GENERATED_BLOCKS[rel][name](), (
            f"{rel} block {name!r} is stale — "
            "run `python -m repro.obs.docgen --write` and commit the result"
        )

    def test_stale_blocks_reports_nothing(self):
        assert stale_blocks(ROOT) == []

    def test_cli_reference_names_every_command(self):
        from repro.cli import build_parser

        sub = next(
            a
            for a in build_parser()._actions
            if hasattr(a, "choices") and a.choices
        )
        reference = cli_reference_markdown()
        for verb in sub.choices:
            assert f"`python -m repro {verb}`" in reference

    def test_inject_round_trip(self):
        doc = "a\n<!-- generated:x start -->\nold\n<!-- generated:x end -->\nb"
        out = inject_block(doc, "x", "new\n")
        assert extract_block(out, "x") == "new\n"
        with pytest.raises(ValueError):
            inject_block(doc, "missing", "payload")


class TestLinks:
    def test_no_broken_intra_repo_links(self):
        assert broken_links(ROOT, subdirs=("", "docs")) == []

    def test_every_docs_page_reachable_from_index(self):
        index = (ROOT / "docs" / "index.md").read_text(encoding="utf-8")
        linked = {t.split("#", 1)[0] for t in iter_markdown_links(index)}
        for page in sorted((ROOT / "docs").glob("*.md")):
            if page.name == "index.md":
                continue
            assert page.name in linked, f"docs/{page.name} is not linked from index"

    def test_link_scanner_skips_fences_and_images(self):
        text = "\n".join(
            [
                "[real](a.md)",
                "```",
                "[fenced](b.md)",
                "```",
                "![image](c.png)",
            ]
        )
        assert list(iter_markdown_links(text)) == ["a.md"]


class TestDoctests:
    @pytest.mark.parametrize("rel", ["README.md", "docs/framework.md"])
    def test_markdown_examples_execute(self, rel):
        failures, tests = doctest.testfile(
            str(ROOT / rel), module_relative=False, verbose=False
        )
        assert tests > 0, f"{rel} has no doctest examples"
        assert failures == 0, f"{rel}: {failures} doctest failure(s)"
