"""Tests for the static race/labeling analyzer, including cross-validation
against the dynamic analysis on machine-generated histories."""

from repro.analysis import find_races
from repro.machines import SCMachine
from repro.programs import RandomScheduler, run
from repro.programs.algorithm_texts import (
    MISLABELED_BAKERY_TEXT,
    NAIVE_LOCK_TEXT,
    PETERSON_TEXT,
    mislabeled_bakery_program,
    naive_lock_text_program,
)
from repro.programs.figure6 import FIGURE6_TEXT
from repro.staticcheck import (
    analyze_program,
    competing_pairs,
    infer_labels,
    report_covers_races,
)
from repro.staticcheck.progcheck import _indices_may_collide


def _report(name):
    text, shared = {
        "figure6": (FIGURE6_TEXT, ("shared",)),
        "peterson": (PETERSON_TEXT, ("turn", "shared")),
        "naive-lock": (NAIVE_LOCK_TEXT, ("lock",)),
        "mislabeled-bakery": (MISLABELED_BAKERY_TEXT, ("shared",)),
    }[name]
    return analyze_program(text, shared=shared, name=name)


class TestProperlyLabeledPrograms:
    def test_figure6_is_properly_labeled(self):
        report = _report("figure6")
        assert report.properly_labeled
        assert report.race_bases == frozenset()
        # The ordinary critical-section pair is seen but classified as
        # cs-protected, not racing.
        assert report.cs_protected_bases == {"shared"}

    def test_peterson_is_properly_labeled(self):
        report = _report("peterson")
        assert report.properly_labeled
        assert report.cs_protected_bases == {"shared"}

    def test_figure6_collects_all_access_sites(self):
        report = _report("figure6")
        bases = {a.base for a in report.accesses}
        assert bases == {"choosing", "number", "shared"}
        # Every choosing/number site carries the paper's sync label.
        assert all(
            a.labeled for a in report.accesses if a.base != "shared"
        )


class TestImproperlyLabeledPrograms:
    def test_naive_lock_races_on_lock(self):
        report = _report("naive-lock")
        assert not report.properly_labeled
        assert report.race_bases == {"lock"}

    def test_mislabeled_bakery_races_on_handshake_variables(self):
        report = _report("mislabeled-bakery")
        assert not report.properly_labeled
        assert report.race_bases == {"choosing", "number"}
        assert report.cs_protected_bases == {"shared"}

    def test_race_reasons_name_the_unlabeled_sides(self):
        report = _report("naive-lock")
        assert all("unlabeled" in race.reason for race in report.races)


class TestAliasing:
    def test_same_thread_param_index_never_collides(self):
        assert not _indices_may_collide("i", "i", "i", 2, {})

    def test_complementary_indices_collide(self):
        # Peterson: thread 0's flag[i] is thread 1's flag[1 - i].
        assert _indices_may_collide("i", "1 - i", "i", 2, {})

    def test_unknown_index_is_conservative(self):
        assert _indices_may_collide("i", "j", "i", 2, {})

    def test_distinct_literals_do_not_collide(self):
        assert not _indices_may_collide("0", "1", "i", 2, {})

    def test_unindexed_locations_collide(self):
        assert _indices_may_collide(None, None, "i", 2, {})

    def test_indexed_vs_bare_never_collides(self):
        # "turn" and "turn[0]" are distinct location strings.
        assert not _indices_may_collide(None, "0", "i", 2, {})


class TestCrossValidation:
    """Static verdicts versus dynamic find_races on real executions."""

    def _dynamic_race_bases(self, factory, seeds=range(6)):
        bases = set()
        races_by_seed = []
        for seed in seeds:
            result = run(
                SCMachine(("p0", "p1")),
                factory(),
                RandomScheduler(seed),
                max_steps=5000,
            )
            races = find_races(result.history)
            races_by_seed.append(races)
            bases |= {a.location.split("[")[0] for a, _ in races}
        return bases, races_by_seed

    def test_mislabeled_bakery_static_covers_dynamic(self):
        report = _report("mislabeled-bakery")
        bases, races_by_seed = self._dynamic_race_bases(
            mislabeled_bakery_program
        )
        # The dynamic analysis confirms the static verdict ...
        assert bases & report.race_bases
        # ... and every dynamically observed race is statically accounted
        # for (flagged, or inside the declared critical section).
        for races in races_by_seed:
            assert report_covers_races(report, races)

    def test_naive_lock_static_covers_dynamic(self):
        report = _report("naive-lock")
        bases, races_by_seed = self._dynamic_race_bases(
            naive_lock_text_program
        )
        assert bases == {"lock"} == report.race_bases
        for races in races_by_seed:
            assert report_covers_races(report, races)

    def test_properly_labeled_bakery_has_no_dynamic_races(self):
        from repro.programs.figure6 import figure6_program

        report = _report("figure6")
        assert report.properly_labeled
        bases, races_by_seed = self._dynamic_race_bases(
            lambda: figure6_program(2)
        )
        assert bases == set()
        for races in races_by_seed:
            assert report_covers_races(report, races)


class TestAliasingRegressions:
    """Gaps the original _eval_index treatment got wrong."""

    def test_complementary_indices_with_three_threads(self):
        # flag[i] vs flag[1 - i]: with threads ∈ {0, 1, 2}, thread 0's
        # flag[1 - i] = flag[1] collides with thread 1's flag[i].
        assert _indices_may_collide("i", "1 - i", "i", 3, {})

    def test_two_minus_i_collides_only_at_three_threads(self):
        # 2 - i ∈ {2, 1, 0} meets i ∈ {0, 1, 2} at i=1; with two threads
        # 2 - i ∈ {2, 1} never equals the *other* thread's i ∈ {0, 1}...
        assert _indices_may_collide("i", "2 - i", "i", 3, {})
        # ...wait: at threads=2, thread 0 has 2-i=2, thread 1 has i=1 —
        # and thread 1's 2-i=1 vs thread 0's i=0: no collision either way.
        assert not _indices_may_collide("i", "2 - i", "i", 2, {})

    def test_locally_bound_name_is_opaque(self):
        # `j` is assigned locally, so a[j] may be anything — even though a
        # parameter named j could exist in the environment.
        text = "j := 0\na[j] := 1\na[i] := 2\n"
        pairs = competing_pairs(text, threads=2, params={"j": 5})
        assert pairs  # conservative: the local j shadows the param

    def test_shadowed_thread_param_is_opaque(self):
        # A local assignment to `i` shadows the thread parameter; a[i] can
        # no longer be assumed distinct across threads.
        shadowed = "i := 0\na[i] := 1\n"
        pairs = competing_pairs(shadowed, threads=2)
        assert pairs
        # Without the shadowing assignment the self-pair is alias-free.
        assert not competing_pairs("a[i] := 1\n", threads=2)

    def test_for_loop_variable_is_opaque(self):
        text = "for j in 0..n-1:\n  a[j] := 1\n"
        assert competing_pairs(text, threads=2)

    def test_read_target_is_opaque(self):
        text = "k := read x\na[k] := 1\na[i] := 2\n"
        assert competing_pairs(text, shared=("x",), threads=2)


class TestLabelInference:
    def test_properly_labeled_program_needs_no_patch(self):
        patch = infer_labels(FIGURE6_TEXT, shared=("shared",), name="figure6")
        assert patch.empty
        assert "no relabeling" in patch.render()

    def test_patch_silences_every_race(self):
        patch = infer_labels(
            MISLABELED_BAKERY_TEXT, shared=("shared",), name="bakery"
        )
        assert not patch.empty
        fixed = patch.apply(MISLABELED_BAKERY_TEXT)
        report = analyze_program(fixed, shared=("shared",), name="bakery")
        assert report.properly_labeled

    def test_patch_is_idempotent(self):
        patch = infer_labels(
            MISLABELED_BAKERY_TEXT, shared=("shared",), name="bakery"
        )
        fixed = patch.apply(MISLABELED_BAKERY_TEXT)
        again = infer_labels(fixed, shared=("shared",), name="bakery")
        assert again.empty
        assert again.apply(fixed) == fixed

    def test_patch_recovers_figure6_labeling(self):
        # Relabeling the stripped Bakery labels exactly the sites the
        # paper labels: every choosing/number access, nothing else.
        patch = infer_labels(
            MISLABELED_BAKERY_TEXT, shared=("shared",), name="bakery"
        )
        assert {a.base for a in patch.accesses} == {"choosing", "number"}
        fixed = patch.apply(MISLABELED_BAKERY_TEXT)
        report = analyze_program(fixed, shared=("shared",), name="bakery")
        assert all(
            a.labeled for a in report.accesses if a.base != "shared"
        )

    def test_patch_preserves_trailing_comments(self):
        text = "x := 1  # publish\nv := read x\n"
        patch = infer_labels(text, shared=("x",))
        fixed = patch.apply(text)
        assert "x := 1 sync  # publish" in fixed
        assert analyze_program(fixed, shared=("x",)).properly_labeled

    def test_relabeled_bakery_is_dynamically_race_free(self):
        # The acceptance check: the inferred labeling is confirmed by the
        # dynamic race detector on real SC executions.
        from repro.programs.pseudocode import parse_program

        patch = infer_labels(
            MISLABELED_BAKERY_TEXT, shared=("shared",), name="bakery"
        )
        fixed = patch.apply(MISLABELED_BAKERY_TEXT)
        program = parse_program(fixed, shared=("shared",))
        factories = {
            f"p{i}": (lambda i=i: program.thread(i=i, n=2)) for i in range(2)
        }
        for seed in range(10):
            result = run(
                SCMachine(("p0", "p1")),
                factories,
                RandomScheduler(seed),
                max_steps=5000,
            )
            assert not find_races(result.history), f"seed {seed}"


class TestTextInput:
    def test_analyze_accepts_raw_text(self):
        report = analyze_program(
            "x := 1\ny := read x", shared=("x",), name="tiny"
        )
        assert report.race_bases == {"x"}

    def test_all_labeled_text_is_clean(self):
        report = analyze_program(
            "x := 1 sync\ny := read x sync", shared=("x",), name="tiny"
        )
        assert report.properly_labeled
