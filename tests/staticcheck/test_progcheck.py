"""Tests for the static race/labeling analyzer, including cross-validation
against the dynamic analysis on machine-generated histories."""

from repro.analysis import find_races
from repro.machines import SCMachine
from repro.programs import RandomScheduler, run
from repro.programs.algorithm_texts import (
    MISLABELED_BAKERY_TEXT,
    NAIVE_LOCK_TEXT,
    PETERSON_TEXT,
    mislabeled_bakery_program,
    naive_lock_text_program,
)
from repro.programs.figure6 import FIGURE6_TEXT
from repro.staticcheck import analyze_program, report_covers_races
from repro.staticcheck.progcheck import _indices_may_collide


def _report(name):
    text, shared = {
        "figure6": (FIGURE6_TEXT, ("shared",)),
        "peterson": (PETERSON_TEXT, ("turn", "shared")),
        "naive-lock": (NAIVE_LOCK_TEXT, ("lock",)),
        "mislabeled-bakery": (MISLABELED_BAKERY_TEXT, ("shared",)),
    }[name]
    return analyze_program(text, shared=shared, name=name)


class TestProperlyLabeledPrograms:
    def test_figure6_is_properly_labeled(self):
        report = _report("figure6")
        assert report.properly_labeled
        assert report.race_bases == frozenset()
        # The ordinary critical-section pair is seen but classified as
        # cs-protected, not racing.
        assert report.cs_protected_bases == {"shared"}

    def test_peterson_is_properly_labeled(self):
        report = _report("peterson")
        assert report.properly_labeled
        assert report.cs_protected_bases == {"shared"}

    def test_figure6_collects_all_access_sites(self):
        report = _report("figure6")
        bases = {a.base for a in report.accesses}
        assert bases == {"choosing", "number", "shared"}
        # Every choosing/number site carries the paper's sync label.
        assert all(
            a.labeled for a in report.accesses if a.base != "shared"
        )


class TestImproperlyLabeledPrograms:
    def test_naive_lock_races_on_lock(self):
        report = _report("naive-lock")
        assert not report.properly_labeled
        assert report.race_bases == {"lock"}

    def test_mislabeled_bakery_races_on_handshake_variables(self):
        report = _report("mislabeled-bakery")
        assert not report.properly_labeled
        assert report.race_bases == {"choosing", "number"}
        assert report.cs_protected_bases == {"shared"}

    def test_race_reasons_name_the_unlabeled_sides(self):
        report = _report("naive-lock")
        assert all("unlabeled" in race.reason for race in report.races)


class TestAliasing:
    def test_same_thread_param_index_never_collides(self):
        assert not _indices_may_collide("i", "i", "i", 2, {})

    def test_complementary_indices_collide(self):
        # Peterson: thread 0's flag[i] is thread 1's flag[1 - i].
        assert _indices_may_collide("i", "1 - i", "i", 2, {})

    def test_unknown_index_is_conservative(self):
        assert _indices_may_collide("i", "j", "i", 2, {})

    def test_distinct_literals_do_not_collide(self):
        assert not _indices_may_collide("0", "1", "i", 2, {})

    def test_unindexed_locations_collide(self):
        assert _indices_may_collide(None, None, "i", 2, {})

    def test_indexed_vs_bare_never_collides(self):
        # "turn" and "turn[0]" are distinct location strings.
        assert not _indices_may_collide(None, "0", "i", 2, {})


class TestCrossValidation:
    """Static verdicts versus dynamic find_races on real executions."""

    def _dynamic_race_bases(self, factory, seeds=range(6)):
        bases = set()
        races_by_seed = []
        for seed in seeds:
            result = run(
                SCMachine(("p0", "p1")),
                factory(),
                RandomScheduler(seed),
                max_steps=5000,
            )
            races = find_races(result.history)
            races_by_seed.append(races)
            bases |= {a.location.split("[")[0] for a, _ in races}
        return bases, races_by_seed

    def test_mislabeled_bakery_static_covers_dynamic(self):
        report = _report("mislabeled-bakery")
        bases, races_by_seed = self._dynamic_race_bases(
            mislabeled_bakery_program
        )
        # The dynamic analysis confirms the static verdict ...
        assert bases & report.race_bases
        # ... and every dynamically observed race is statically accounted
        # for (flagged, or inside the declared critical section).
        for races in races_by_seed:
            assert report_covers_races(report, races)

    def test_naive_lock_static_covers_dynamic(self):
        report = _report("naive-lock")
        bases, races_by_seed = self._dynamic_race_bases(
            naive_lock_text_program
        )
        assert bases == {"lock"} == report.race_bases
        for races in races_by_seed:
            assert report_covers_races(report, races)

    def test_properly_labeled_bakery_has_no_dynamic_races(self):
        from repro.programs.figure6 import figure6_program

        report = _report("figure6")
        assert report.properly_labeled
        bases, races_by_seed = self._dynamic_race_bases(
            lambda: figure6_program(2)
        )
        assert bases == set()
        for races in races_by_seed:
            assert report_covers_races(report, races)


class TestTextInput:
    def test_analyze_accepts_raw_text(self):
        report = analyze_program(
            "x := 1\ny := read x", shared=("x",), name="tiny"
        )
        assert report.race_bases == {"x"}

    def test_all_labeled_text_is_clean(self):
        report = analyze_program(
            "x := 1 sync\ny := read x sync", shared=("x",), name="tiny"
        )
        assert report.properly_labeled
