"""Tests for the polynomial history pre-pass.

The load-bearing property is soundness in *both* directions: whenever the
pre-pass decides, its polarity must match the kernel's — DENY means the
kernel denies, ADMIT means the kernel admits and the pre-pass's witness
views are themselves legal serializations.  It is exercised here over the
full litmus catalog and a seeded random sample for every registered spec
(the 200-history sweep with exact byte comparison lives in
``benchmarks/bench_staticcheck.py``).
"""

import numpy as np
import pytest

from repro.analysis.random_histories import random_history
from repro.core.view import first_legality_violation
from repro.kernel.search import check_with_spec
from repro.litmus import CATALOG, parse_history
from repro.spec import ALL_SPECS
from repro.staticcheck import compile_prepass, prepass_check

SPECS = {spec.name: spec for spec in ALL_SPECS}


class TestSoundness:
    def test_catalog_decided_matches_kernel(self):
        for test in CATALOG.values():
            for spec in ALL_SPECS:
                verdict = prepass_check(spec, test.history)
                if verdict.decided:
                    result = check_with_spec(spec, test.history)
                    assert verdict.allowed == result.allowed, (
                        f"{test.name} x {spec.name}: pre-pass "
                        f"{'ADMIT' if verdict.allowed else 'DENY'} "
                        f"({verdict.check}) but the kernel says "
                        f"{'ADMIT' if result.allowed else 'DENY'}"
                    )

    def test_random_histories_decided_matches_kernel(self):
        for seed in range(40):
            h = random_history(
                np.random.default_rng(seed), procs=3, ops_per_proc=4
            )
            for spec in ALL_SPECS:
                verdict = prepass_check(spec, h)
                if verdict.decided:
                    assert verdict.allowed == check_with_spec(spec, h).allowed, (
                        f"seed {seed} x {spec.name}: unsound pre-pass "
                        f"{'ADMIT' if verdict.allowed else 'DENY'} "
                        f"({verdict.check}: {verdict.reason})"
                    )

    def test_kernel_opt_in_matches_plain_verdicts(self):
        # check_with_spec(prepass=True) must yield the same allowed bit
        # as the default path on every catalog entry and spec.
        for test in CATALOG.values():
            for spec in ALL_SPECS:
                plain = check_with_spec(spec, test.history)
                fast = check_with_spec(spec, test.history, prepass=True)
                assert plain.allowed == fast.allowed
                if not fast.allowed:
                    assert fast.reason  # a DENY always carries a reason


class TestSpecificDenies:
    def test_store_buffering_denied_under_sc(self):
        verdict = prepass_check(SPECS["SC"], CATALOG["fig1-sb"].history)
        assert verdict.decided
        assert verdict.check == "view-cycle"
        assert verdict.counterexample is not None
        assert verdict.counterexample.kind == "cyclic-constraints"

    def test_message_passing_denied_under_sc(self):
        verdict = prepass_check(SPECS["SC"], CATALOG["mp"].history)
        assert verdict.decided
        assert not verdict.allowed

    def test_coherence_read_reordering_denied(self):
        # corr needs the from-read edges: reads of x=2 then x=1 against
        # the forced write order w(x)1 -> w(x)2.
        verdict = prepass_check(SPECS["Coherence"], CATALOG["corr"].history)
        assert verdict.decided
        assert not verdict.allowed

    def test_impossible_value_denied_for_every_spec(self):
        h = parse_history("p: w(x)1 | q: r(x)7")
        for spec in ALL_SPECS:
            verdict = prepass_check(spec, h)
            assert verdict.decided
            assert verdict.check == "rf-sanity"
            assert "never written" in verdict.reason


class TestSpecificAdmits:
    def test_simple_handoff_admitted_with_witness(self):
        # One writer, one reader of the written value: unique rf, no
        # cycles anywhere — the witness construction must fire for SC.
        h = parse_history("p: w(x)1 | q: r(x)1")
        verdict = prepass_check(SPECS["SC"], h)
        assert verdict.decided
        assert verdict.allowed
        assert verdict.check == "admit-witness"
        assert verdict.witness is not None

    def test_admit_witness_views_are_legal(self):
        # Every witness view the pre-pass constructs — across the whole
        # catalog and every spec — must itself pass the kernel's exact
        # legality check and match the kernel's verdict.
        for test in CATALOG.values():
            for spec in ALL_SPECS:
                verdict = prepass_check(spec, test.history)
                if not (verdict.decided and verdict.allowed):
                    continue
                assert verdict.witness is not None
                for proc, view in verdict.witness.views.items():
                    violation = first_legality_violation(list(view))
                    assert violation is None, (
                        f"{test.name} x {spec.name}: illegal witness "
                        f"view for {proc}: {violation}"
                    )

    def test_allowed_history_decides_admit_or_abstains(self):
        h = CATALOG["mp-ok"].history
        for spec in ALL_SPECS:
            verdict = prepass_check(spec, h)
            if verdict.decided:
                assert verdict.allowed
                assert check_with_spec(spec, h).allowed

    def test_admit_to_result_matches_driver_shape(self):
        h = parse_history("p: w(x)1 | q: r(x)1")
        verdict = prepass_check(SPECS["SC"], h)
        result = verdict.to_result()
        assert result.allowed
        assert result.explored == 0
        assert result.witness is not None
        assert set(result.views) == {"p", "q"}


class TestUnknown:
    def test_ambiguous_attribution_is_unknown(self):
        # Two writers of the same value: the rf attribution is ambiguous,
        # so every check past rf-sanity is skipped.
        h = parse_history("p: w(x)1 | q: w(x)1 | r: r(x)1")
        verdict = prepass_check(SPECS["SC"], h)
        assert not verdict.decided
        assert verdict.checks_run == ("rf-sanity",)

    def test_labeled_history_abstains_under_rc(self):
        # Labeled serializations are the NP-hard part: a labeled history
        # under a labeled-discipline spec must fall through to the search.
        h = parse_history("p: w*(x)1 | q: r*(x)1")
        verdict = prepass_check(SPECS["RC_sc"], h)
        assert not verdict.decided

    def test_unknown_to_result_raises(self):
        # Ambiguous attribution keeps the verdict undecided; to_result()
        # on an undecided verdict has nothing to report.
        h = parse_history("p: w(x)1 | q: w(x)1 | r: r(x)1")
        verdict = prepass_check(SPECS["SC"], h)
        assert not verdict.decided
        with pytest.raises(ValueError):
            verdict.to_result()

    def test_decided_to_result_is_a_deny(self):
        verdict = prepass_check(SPECS["SC"], CATALOG["fig1-sb"].history)
        result = verdict.to_result()
        assert not result.allowed
        assert result.explored == 0
        assert result.counterexample is not None


class TestCompilation:
    def test_compile_is_cached_per_spec(self):
        spec = SPECS["Causal"]
        assert compile_prepass(spec) is compile_prepass(spec)

    def test_checks_listed_per_spec(self):
        # Coherence-class specs get the write-order cycle check; PRAM
        # (no write agreement) does not.
        assert "write-order-cycle" in compile_prepass(SPECS["Coherence"]).checks
        assert "write-order-cycle" not in compile_prepass(SPECS["PRAM"]).checks

    def test_admit_witness_listed_for_every_spec(self):
        for spec in ALL_SPECS:
            assert "admit-witness" in compile_prepass(spec).checks
