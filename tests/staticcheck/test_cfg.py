"""Tests for the pseudocode control-flow graph and its must-dataflow."""

import pytest

from repro.core.errors import ProgramError
from repro.programs.algorithm_texts import (
    MISLABELED_BAKERY_TEXT,
    NAIVE_LOCK_TEXT,
    PETERSON_TEXT,
)
from repro.programs.figure6 import FIGURE6_TEXT
from repro.staticcheck.cfg import (
    Cfg,
    acquires_before,
    build_cfg,
    cs_bracketed,
    must_in_cs,
    releases_after,
    sync_before,
)


class TestConstruction:
    def test_straightline_accesses_in_program_order(self):
        cfg = build_cfg("x := 1\nv := read x\ny := 2\n", shared=("x", "y"))
        kinds = [(n.kind, n.base) for n in cfg.accesses()]
        assert kinds == [("write", "x"), ("read", "x"), ("write", "y")]

    def test_entry_and_exit_are_fixed_ids(self):
        cfg = build_cfg("x := 1\n", shared=("x",))
        assert cfg.nodes[Cfg.ENTRY].kind == "entry"
        assert cfg.nodes[Cfg.EXIT].kind == "exit"

    def test_await_spins_on_itself(self):
        cfg = build_cfg("await x == 1\n", shared=("x",))
        (node,) = cfg.accesses()
        assert node.kind == "await"
        assert node.id in cfg.succ[node.id]

    def test_indexed_location_split_into_base_and_index(self):
        cfg = build_cfg("a[1 - i] := 1\n")
        (node,) = cfg.accesses()
        assert node.base == "a" and node.index == "1 - i"

    def test_local_assignment_is_not_an_access(self):
        cfg = build_cfg("m := 0\n")
        assert cfg.accesses() == ()

    def test_statements_after_break_are_unreachable(self):
        cfg = build_cfg(
            "while true:\n  x := 1\n  break\n  y := 2\n", shared=("x", "y")
        )
        bases = [n.base for n in cfg.accesses()]
        assert bases == ["x"]  # y := 2 never made it into the graph

    def test_break_outside_loop_rejected(self):
        with pytest.raises(ProgramError, match="break outside"):
            build_cfg("break\n")

    def test_render_lists_every_node(self):
        cfg = build_cfg("x := 1 sync\n", shared=("x",))
        assert "write x sync" in cfg.render()


class TestMustInCs:
    def test_cs_enter_in_one_branch_arm_does_not_protect_join(self):
        # The regression the CFG exists to fix: a flat depth counter walks
        # the arm's cs_enter and believes the access after the join is
        # protected.  The must-analysis meets over both arms.
        cfg = build_cfg("if i == 0:\n  cs_enter\nx := 1\ncs_exit\n", shared=("x",))
        state = must_in_cs(cfg)
        (access,) = cfg.accesses()
        assert state[access.id] is False

    def test_access_between_enter_and_exit_is_protected(self):
        cfg = build_cfg("cs_enter\nx := 1\ncs_exit\n", shared=("x",))
        state = must_in_cs(cfg)
        (access,) = cfg.accesses()
        assert state[access.id] is True

    def test_access_after_exit_is_unprotected(self):
        cfg = build_cfg("cs_enter\ncs_exit\nx := 1\n", shared=("x",))
        state = must_in_cs(cfg)
        (access,) = cfg.accesses()
        assert state[access.id] is False

    def test_cs_protection_survives_a_loop(self):
        cfg = build_cfg(
            "cs_enter\nfor j in 0..1:\n  x := 1\ncs_exit\n", shared=("x",)
        )
        state = must_in_cs(cfg)
        (access,) = cfg.accesses()
        assert state[access.id] is True


class TestLabelDataflow:
    def test_sync_before_requires_label_on_every_path(self):
        cfg = build_cfg(
            "if i == 0:\n  x := 1 sync\ny := 2\n", shared=("x", "y")
        )
        before = sync_before(cfg)
        write_y = next(n for n in cfg.accesses() if n.base == "y")
        assert write_y.id not in before

    def test_acquires_before_sees_labeled_read(self):
        cfg = build_cfg("v := read x sync\ny := 2\n", shared=("x", "y"))
        write_y = next(n for n in cfg.accesses() if n.base == "y")
        assert write_y.id in acquires_before(cfg)

    def test_labeled_write_is_not_an_acquire(self):
        cfg = build_cfg("x := 1 sync\ny := 2\n", shared=("x", "y"))
        write_y = next(n for n in cfg.accesses() if n.base == "y")
        assert write_y.id not in acquires_before(cfg)
        assert write_y.id in sync_before(cfg)

    def test_releases_after_sees_trailing_labeled_write(self):
        cfg = build_cfg("x := 1\ny := 2 sync\n", shared=("x", "y"))
        write_x = next(n for n in cfg.accesses() if n.base == "x")
        assert write_x.id in releases_after(cfg)

    def test_trailing_labeled_read_is_not_a_release(self):
        cfg = build_cfg("x := 1\nv := read y sync\n", shared=("x", "y"))
        write_x = next(n for n in cfg.accesses() if n.base == "x")
        assert write_x.id not in releases_after(cfg)


class TestCsBracketed:
    @pytest.mark.parametrize(
        "text,shared,expect",
        [
            (FIGURE6_TEXT, ("shared",), True),
            (PETERSON_TEXT, ("turn", "shared"), True),
            (NAIVE_LOCK_TEXT, ("lock",), False),
            (MISLABELED_BAKERY_TEXT, ("shared",), False),
        ],
        ids=["figure6", "peterson", "naive-lock", "mislabeled-bakery"],
    )
    def test_suite_verdicts(self, text, shared, expect):
        assert cs_bracketed(build_cfg(text, shared=shared)) is expect

    def test_program_without_cs_is_trivially_bracketed(self):
        assert cs_bracketed(build_cfg("x := 1\n", shared=("x",)))

    def test_bare_cs_markers_are_not_bracketed(self):
        cfg = build_cfg("cs_enter\nx := 1\ncs_exit\n", shared=("x",))
        assert not cs_bracketed(cfg)

    def test_sync_bracketed_cs_is_accepted(self):
        cfg = build_cfg(
            "v := read g sync\ncs_enter\nx := 1\ncs_exit\ng := 0 sync\n",
            shared=("g", "x"),
        )
        assert cs_bracketed(cfg)

    def test_exit_needs_a_release_not_just_any_label(self):
        # A labeled *read* after cs_exit does not publish the exit.
        cfg = build_cfg(
            "v := read g sync\ncs_enter\nx := 1\ncs_exit\nw := read g sync\n",
            shared=("g", "x"),
        )
        assert not cs_bracketed(cfg)
