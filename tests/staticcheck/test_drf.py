"""Tests for DRF certificates: issue, verify, tamper, cross-validate.

The cross-validation class discharges the paper's claim behaviorally:
every program this module certifies DRF is run through the bounded
model checker and on the RC_sc machine — the weaker lattice member that
honors labels — and keeps mutual exclusion there.  (Exhaustive
exploration is out of reach for spin-loop programs, so the runs are
bounded; see tests/programs/test_modelcheck.py.)
"""

import dataclasses

import pytest

from repro.machines import RCMachine, SCMachine
from repro.programs import RandomScheduler, run, verify_mutual_exclusion
from repro.programs.algorithm_texts import (
    MISLABELED_BAKERY_TEXT,
    NAIVE_LOCK_TEXT,
    PETERSON_TEXT,
)
from repro.programs.figure6 import FIGURE6_TEXT
from repro.programs.pseudocode import parse_program
from repro.staticcheck import certify_program, infer_labels, verify_certificate
from repro.staticcheck.drf import DrfCertificate, Obligation


def _certify(name):
    text, shared = {
        "figure6": (FIGURE6_TEXT, ("shared",)),
        "peterson": (PETERSON_TEXT, ("turn", "shared")),
        "naive-lock": (NAIVE_LOCK_TEXT, ("lock",)),
        "mislabeled-bakery": (MISLABELED_BAKERY_TEXT, ("shared",)),
    }[name]
    return certify_program(text, shared=shared, name=name), text


class TestCertification:
    def test_figure6_certifies(self):
        result, text = _certify("figure6")
        assert result.certified
        cert = result.certificate
        assert cert.obligations  # competing pairs exist and are discharged
        assert any(o.discharge == "labeled" for o in cert.obligations)
        assert any(
            o.discharge == "critical-section" for o in cert.obligations
        )
        assert verify_certificate(cert, text) == ()

    def test_peterson_certifies(self):
        result, text = _certify("peterson")
        assert result.certified
        assert verify_certificate(result.certificate, text) == ()

    def test_racy_programs_do_not_certify(self):
        for name in ("naive-lock", "mislabeled-bakery"):
            result, _ = _certify(name)
            assert not result.certified
            assert any("potential race" in p for p in result.problems)

    def test_unbracketed_cs_blocks_certification(self):
        result = certify_program(
            "cs_enter\nx := 1\ncs_exit\n", shared=("x",), name="bare-cs"
        )
        assert not result.certified
        assert any("not bracketed" in p for p in result.problems)

    def test_cs_assumption_recorded_only_when_needed(self):
        with_cs, _ = _certify("figure6")
        assert with_cs.certificate.assumptions
        labeled_only = certify_program(
            "x := 1 sync\nv := read x sync\n", shared=("x",), name="tiny"
        )
        assert labeled_only.certified
        assert labeled_only.certificate.assumptions == ()

    def test_relabeled_bakery_certifies(self):
        patch = infer_labels(
            MISLABELED_BAKERY_TEXT, shared=("shared",), name="bakery"
        )
        fixed = patch.apply(MISLABELED_BAKERY_TEXT)
        result = certify_program(fixed, shared=("shared",), name="bakery")
        assert result.certified
        assert verify_certificate(result.certificate, fixed) == ()


class TestVerification:
    def test_json_round_trip_verifies(self):
        result, text = _certify("figure6")
        restored = DrfCertificate.from_json(result.certificate.to_json())
        assert restored == result.certificate
        assert verify_certificate(restored, text) == ()

    def test_edited_text_fails_the_digest(self):
        result, text = _certify("figure6")
        problems = verify_certificate(result.certificate, text + "\n# note\n")
        assert problems and "digest" in problems[0]

    def test_dropped_obligation_is_detected(self):
        result, text = _certify("figure6")
        cert = result.certificate
        tampered = dataclasses.replace(cert, obligations=cert.obligations[1:])
        problems = verify_certificate(tampered, text)
        assert any("has no obligation" in p for p in problems)

    def test_forged_discharge_is_detected(self):
        result, text = _certify("figure6")
        cert = result.certificate
        forged = tuple(
            dataclasses.replace(o, discharge="labeled")
            if o.discharge == "critical-section"
            else o
            for o in cert.obligations
        )
        problems = verify_certificate(
            dataclasses.replace(cert, obligations=forged), text
        )
        assert any("unlabeled" in p for p in problems)

    def test_unknown_discharge_kind_is_rejected(self):
        result, text = _certify("figure6")
        cert = result.certificate
        first = cert.obligations[0]
        bogus = (
            dataclasses.replace(first, discharge="wishful"),
        ) + cert.obligations[1:]
        problems = verify_certificate(
            dataclasses.replace(cert, obligations=bogus), text
        )
        assert any("unknown discharge" in p for p in problems)

    def test_missing_assumption_is_detected(self):
        result, text = _certify("figure6")
        cert = dataclasses.replace(result.certificate, assumptions=())
        problems = verify_certificate(cert, text)
        assert any("assumption" in p for p in problems)

    def test_obligation_dict_round_trip(self):
        ob = Obligation("x", 3, 7, "labeled")
        assert Obligation.from_dict(ob.to_dict()) == ob

    def test_render_mentions_the_digest_and_pairs(self):
        result, _ = _certify("peterson")
        text = result.certificate.render()
        assert "DRF certificate" in text and "labeled" in text


class TestCertifiedProgramsBehave:
    """Certified-DRF programs keep mutual exclusion on weaker machines."""

    CERTIFIED = [
        ("figure6", FIGURE6_TEXT, ("shared",)),
        ("peterson", PETERSON_TEXT, ("turn", "shared")),
    ]

    def _setup(self, text, shared, machine_factory):
        program = parse_program(text, shared=shared)

        def setup():
            machine = machine_factory()
            factories = {
                f"p{i}": (lambda i=i: program.thread(i=i, n=2))
                for i in range(2)
            }
            return machine, factories

        return setup

    @pytest.mark.parametrize("name,text,shared", CERTIFIED, ids=["figure6", "peterson"])
    def test_certified_suite_is_certified(self, name, text, shared):
        assert certify_program(text, shared=shared, name=name).certified

    @pytest.mark.parametrize("name,text,shared", CERTIFIED, ids=["figure6", "peterson"])
    def test_bounded_modelcheck_on_sc(self, name, text, shared):
        setup = self._setup(text, shared, lambda: SCMachine(("p0", "p1")))
        report = verify_mutual_exclusion(setup, max_steps=150, max_runs=40)
        assert report.safe

    @pytest.mark.parametrize("name,text,shared", CERTIFIED, ids=["figure6", "peterson"])
    def test_bounded_modelcheck_on_rc_sc(self, name, text, shared):
        setup = self._setup(
            text, shared, lambda: RCMachine(("p0", "p1"), labeled_mode="sc")
        )
        report = verify_mutual_exclusion(setup, max_steps=150, max_runs=40)
        assert report.safe

    @pytest.mark.parametrize("name,text,shared", CERTIFIED, ids=["figure6", "peterson"])
    def test_random_schedules_on_rc_sc(self, name, text, shared):
        program = parse_program(text, shared=shared)
        factories = {
            f"p{i}": (lambda i=i: program.thread(i=i, n=2)) for i in range(2)
        }
        for seed in range(20):
            result = run(
                RCMachine(("p0", "p1"), labeled_mode="sc"),
                factories,
                RandomScheduler(seed),
                max_steps=4000,
            )
            assert not result.mutex_violation, f"seed {seed}"

    def test_uncertified_program_actually_misbehaves(self):
        # The contrast case: the broken lock is refused a certificate AND
        # violates mutual exclusion — the static refusal is not spurious.
        result = certify_program(
            NAIVE_LOCK_TEXT, shared=("lock",), name="naive-lock"
        )
        assert not result.certified
        setup = self._setup(
            NAIVE_LOCK_TEXT, ("lock",), lambda: SCMachine(("p0", "p1"))
        )
        report = verify_mutual_exclusion(setup, max_steps=60)
        assert not report.safe
