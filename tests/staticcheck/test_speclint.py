"""Tests for the memory-model spec linter."""

from repro.spec import ALL_SPECS, PO, SEMI_CAUSAL
from repro.spec.parameters import MutualConsistency, OperationSet
from repro.staticcheck import (
    broken_fixture_specs,
    lint_parameters,
    lint_registry,
    lint_spec,
)


def _codes(findings):
    return {f.code for f in findings}


class TestRegistry:
    def test_no_registered_spec_has_errors(self):
        for name, findings in lint_registry().items():
            errors = [f for f in findings if f.level == "error"]
            assert not errors, f"{name}: {[f.message for f in errors]}"

    def test_probe_set_separates_every_registered_pair(self):
        # SL101 on a registry spec would mean two registered lattice nodes
        # are indistinguishable on the probes — the probe set must be rich
        # enough to tell all twelve apart (e.g. RC_sc vs RC_pc needs the
        # labeled store-buffering probe).
        for name, findings in lint_registry().items():
            assert "SL101" not in _codes(findings), name

    def test_containment_infos_match_the_lattice(self):
        # SC is the strongest memory: it must be flagged as contained in
        # every other comparable registry spec on the probe set.
        findings = lint_registry()["SC"]
        contained_in = {
            f.message.split("'")[1] for f in findings if f.code == "SL102"
        }
        assert {"TSO", "PC", "PRAM", "Causal", "Coherence"} <= contained_in


class TestEveryRegisteredSpec:
    """The whole zoo goes through the linter, spec by spec (tier 1)."""

    def test_registry_is_complete_and_clean(self):
        results = lint_registry()
        assert len(results) == len(ALL_SPECS)
        assert set(results) == {spec.name for spec in ALL_SPECS}
        for name, findings in results.items():
            flagged = [f for f in findings if f.level in ("error", "warning")]
            assert not flagged, (
                f"{name}: {[f.render() for f in flagged]}"
            )

    def test_fixture_specs_still_trip_the_rules(self):
        # The clean-registry assertion above must not be vacuous: the
        # deliberately broken fixtures still produce non-info findings.
        for spec in broken_fixture_specs():
            findings = lint_spec(spec)
            assert any(
                f.level in ("error", "warning") for f in findings
            ), spec.name


class TestBrokenFixtures:
    def test_reversed_po_ordering_is_flagged(self):
        broken = broken_fixture_specs()[0]
        findings = lint_spec(broken)
        assert any(
            f.code == "SL001" and f.level == "error" for f in findings
        ), [f.render() for f in findings]

    def test_shadow_sc_is_flagged_as_duplicate(self):
        shadow = broken_fixture_specs()[1]
        findings = lint_spec(shadow)
        dupes = [f for f in findings if f.code == "SL101"]
        assert dupes and "'SC'" in dupes[0].message


class TestParameterRules:
    def test_bracketing_without_discipline(self):
        findings = lint_parameters(
            "X",
            OperationSet.ALL_REMOTE,
            MutualConsistency.NONE,
            PO,
            labeled_discipline=None,
            bracketing=True,
        )
        assert "SL002" in _codes(findings)

    def test_identical_views_need_all_operations(self):
        findings = lint_parameters(
            "X",
            OperationSet.REMOTE_WRITES,
            MutualConsistency.IDENTICAL,
            PO,
        )
        assert any(
            f.code == "SL002" and "ALL_REMOTE" in f.message for f in findings
        )

    def test_coherence_needing_ordering_without_write_agreement(self):
        findings = lint_parameters(
            "X",
            OperationSet.ALL_REMOTE,
            MutualConsistency.NONE,
            SEMI_CAUSAL,
        )
        assert any(
            f.code == "SL002" and "coherence" in f.message for f in findings
        )

    def test_valid_triple_is_clean(self):
        findings = lint_parameters(
            "X", OperationSet.ALL_REMOTE, MutualConsistency.IDENTICAL, PO
        )
        assert findings == []

    def test_renders_mention_code_and_spec(self):
        spec = broken_fixture_specs()[0]
        finding = lint_spec(spec)[0]
        text = finding.render()
        assert finding.code in text and spec.name in text


class TestProbeOverrides:
    def test_registry_and_probes_can_be_narrowed(self):
        sc = next(s for s in ALL_SPECS if s.name == "SC")
        # Against an empty registry there is nothing to compare with:
        # only parameter/ordering findings can appear, and SC has none.
        assert lint_spec(sc, registry=[sc]) == []
