"""The checked-in seed corpus, replayed as tier-1 regression fixtures.

Every ``litmus`` record of ``data/seed_corpus.jsonl`` is a fuzz-found,
shrunk-to-minimal history whose agreed verdict vector was locked when it
was harvested (``repro.diff.fuzz.harvest_fixtures``).  Replaying them pins
the whole oracle panel: any drift — a fast path diverging from the kernel,
the legacy solver diverging from either, a prepass soundness break, a
Figure 5 lattice violation — fails here before a fuzz campaign ever runs.

Regenerate after an *intended* semantics change with
``tools/regen_seed_corpus.py`` (which fuzz-harvests a witness per lattice
edge over the full spec-backed panel and falls back to the speclint
family probes for the patterns random sampling rarely hits).
"""

from pathlib import Path

import pytest

from repro.diff import (
    CORPUS_VERSION,
    SEPARATOR_PATTERNS,
    DiscrepancyCorpus,
    agreed_verdicts,
    find_discrepancies,
    panel_verdicts,
)
CORPUS_PATH = Path(__file__).parent / "data" / "seed_corpus.jsonl"


@pytest.fixture(scope="module")
def corpus():
    assert CORPUS_PATH.exists(), "seed corpus missing from the repository"
    return DiscrepancyCorpus(CORPUS_PATH)


class TestSeedCorpus:
    def test_header_matches_current_format(self, corpus):
        headers = [r for r in corpus.records() if r.get("type") == "run"]
        assert headers and headers[0]["corpus_version"] == CORPUS_VERSION

    def test_covers_every_separator_pattern(self, corpus):
        keys = {key for key, _, _ in corpus.litmus_entries()}
        assert keys == {f"separator:{label}" for label, _, _ in SEPARATOR_PATTERNS}

    def test_fixtures_replay_clean_with_locked_verdicts(self, corpus):
        # Each entry replays under the panel its verdicts were locked
        # over (the keys of ``expected``), so fixtures harvested over the
        # full registry pin every model they consulted, not just the
        # paper's five.
        entries = corpus.litmus_entries()
        assert entries
        for key, history, expected in entries:
            panel = panel_verdicts(history, tuple(expected))
            assert find_discrepancies(panel) == [], key
            assert agreed_verdicts(panel) == expected, key

    def test_fixtures_witness_their_separation(self, corpus):
        # Each separator fixture must actually separate its two models.
        by_label = {label: (admit, deny) for label, admit, deny in SEPARATOR_PATTERNS}
        for key, _, expected in corpus.litmus_entries():
            admit, deny = by_label[key.removeprefix("separator:")]
            assert expected[admit] is True, key
            assert expected[deny] is False, key
