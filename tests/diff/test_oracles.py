"""Tests for the oracle panel and its discrepancy rules."""

import pytest

from repro.core.errors import DiffError
from repro.diff import (
    Discrepancy,
    agreed_verdicts,
    find_discrepancies,
    panel_verdicts,
)
from repro.litmus import parse_history

SB = parse_history("p: w(x)1 r(y)0 | q: w(y)2 r(x)0")  # store-buffer: TSO, not SC
TRIVIAL = parse_history("p: w(x)1 | q: r(x)1")


def _row(fast, kernel=None, legacy=None, prepass_deny=False):
    """A synthetic spec-backed panel row (kernel/legacy default to fast)."""
    return {
        "fast": fast,
        "kernel": fast if kernel is None else kernel,
        "legacy": fast if legacy is None else legacy,
        "prepass_deny": prepass_deny,
    }


class TestPanelVerdicts:
    def test_all_oracles_agree_on_store_buffer(self):
        panel = panel_verdicts(SB, ("SC", "TSO", "PC", "Causal", "PRAM"))
        for name, verdicts in panel.items():
            assert verdicts["fast"] == verdicts["kernel"] == verdicts["legacy"]
        agreed = agreed_verdicts(panel)
        assert agreed == {
            "SC": False, "TSO": True, "PC": True, "Causal": True, "PRAM": True
        }

    def test_spec_less_model_gets_only_fast(self):
        panel = panel_verdicts(TRIVIAL, ("TSO-axiomatic",))
        assert set(panel["TSO-axiomatic"]) == {"fast"}

    def test_prepass_deny_only_on_denied_histories(self):
        # prepass is sound for DENY: it may only fire when the kernel denies.
        panel = panel_verdicts(SB, ("SC",))
        assert panel["SC"]["prepass_deny"] in (True, False)
        if panel["SC"]["prepass_deny"]:
            assert not panel["SC"]["kernel"]

    def test_unknown_model_rejected(self):
        with pytest.raises(DiffError, match="unknown model"):
            panel_verdicts(TRIVIAL, ("Nonsense",))

    def test_incremental_oracle_matches_kernel(self):
        panel = panel_verdicts(SB, ("SC", "TSO"))
        for name, verdicts in panel.items():
            assert verdicts["incremental"] == verdicts["kernel"], name
            assert verdicts["incremental_prefix_ok"] is True, name


class TestAgreedVerdicts:
    def test_kernel_wins(self):
        panel = {"SC": _row(fast=True, kernel=False)}
        assert agreed_verdicts(panel) == {"SC": False}

    def test_fast_fallback_for_spec_less(self):
        panel = {"TSO-axiomatic": {"fast": True}}
        assert agreed_verdicts(panel) == {"TSO-axiomatic": True}


class TestFindDiscrepancies:
    def test_clean_panel_yields_nothing(self):
        assert find_discrepancies(panel_verdicts(SB, ("SC", "TSO", "PRAM"))) == []

    def test_oracle_disagreement(self):
        panel = {"SC": _row(fast=True, legacy=False)}
        (d,) = find_discrepancies(panel)
        assert d.kind == "oracle-disagreement"
        assert d.models == ("SC",)
        assert "legacy=DENY" in d.detail and "fast=ADMIT" in d.detail

    def test_prepass_unsound(self):
        panel = {"SC": _row(fast=True, prepass_deny=True)}
        (d,) = find_discrepancies(panel)
        assert d.kind == "prepass-unsound"

    def test_prepass_deny_on_denied_history_is_fine(self):
        panel = {"SC": _row(fast=False, prepass_deny=True)}
        assert find_discrepancies(panel) == []

    def test_incremental_disagreement(self):
        panel = {"SC": dict(_row(fast=True), incremental=False)}
        (d,) = find_discrepancies(panel)
        assert d.kind == "oracle-disagreement"
        assert "incremental=DENY" in d.detail

    def test_incremental_divergence(self):
        # Final verdicts agree, but some streamed prefix diverged from a
        # fresh check of the same prefix.
        panel = {
            "SC": dict(
                _row(fast=False), incremental=False, incremental_prefix_ok=False
            )
        }
        (d,) = find_discrepancies(panel)
        assert d.kind == "incremental-divergence"
        assert d.models == ("SC",)

    def test_lattice_violation(self):
        # SC-admitted but TSO-denied contradicts SC ⊆ TSO (Figure 5).
        panel = {"SC": _row(fast=True), "TSO": _row(fast=False)}
        (d,) = find_discrepancies(panel)
        assert d.kind == "lattice-violation"
        assert d.models == ("SC", "TSO")

    def test_lattice_direction_matters(self):
        # TSO-admitted, SC-denied is the *expected* strictness, not a bug.
        panel = {"SC": _row(fast=False), "TSO": _row(fast=True)}
        assert find_discrepancies(panel) == []

    def test_edge_skipped_when_model_absent(self):
        panel = {"SC": _row(fast=True)}  # TSO not consulted
        assert find_discrepancies(panel) == []

    def test_machine_unsound(self):
        panel = {"SC": _row(fast=False)}
        (d,) = find_discrepancies(panel, machine_model="SC")
        assert d.kind == "machine-unsound"
        assert d.models == ("SC",)

    def test_machine_model_admitting_is_fine(self):
        panel = {"SC": _row(fast=True)}
        assert find_discrepancies(panel, machine_model="SC") == []

    def test_machine_model_missing_from_panel_rejected(self):
        with pytest.raises(DiffError, match="missing from the panel"):
            find_discrepancies({"SC": _row(fast=True)}, machine_model="PC")


class TestDiscrepancy:
    def test_key_is_kind_and_models(self):
        d = Discrepancy("oracle-disagreement", ("SC",), "detail")
        assert d.key == ("oracle-disagreement", ("SC",))

    def test_render_names_kind_and_models(self):
        d = Discrepancy("lattice-violation", ("SC", "TSO"), "broken edge")
        assert d.render() == "[lattice-violation] SC/TSO: broken edge"
