"""Tests for greedy 1-minimal witness shrinking."""

import pytest

from repro.diff import Discrepancy, shrink_history
from repro.litmus import format_history, parse_history

D = Discrepancy("synthetic", ("SC",), "test claim")


def _holds_if(condition):
    """A predicate returning the synthetic discrepancy when ``condition``."""
    return lambda h: D if condition(h) else None


class TestShrinkHistory:
    def test_minimizes_to_single_relevant_op(self):
        h = parse_history("p: w(x)1 w(y)2 r(x)1 | q: w(y)3 r(y)3")
        contains_read_of_x = _holds_if(
            lambda c: any(op.is_read and op.location == "x" for op in c.operations)
        )
        result = shrink_history(h, contains_read_of_x)
        assert format_history(result.history, oneline=True) == "p: r(x)1"
        assert result.discrepancy is D

    def test_whole_processor_dropped_first(self):
        h = parse_history("p: w(x)1 | q: w(y)2 w(y)3 w(y)4")
        only_needs_p = _holds_if(lambda c: any(op.proc == "p" for op in c.operations))
        result = shrink_history(h, only_needs_p)
        assert result.history.procs == ("p",)
        # Dropping q whole is one step, not three op deletions.
        assert result.steps == 1

    def test_result_is_one_minimal(self):
        h = parse_history("p: w(x)1 r(y)0 | q: w(y)2 r(x)0")
        needs_two_writes = _holds_if(
            lambda c: sum(op.is_write for op in c.operations) >= 2
        )
        result = shrink_history(h, needs_two_writes)
        assert sum(op.is_write for op in result.history.operations) == 2
        # No single further deletion can preserve the claim.
        for op in result.history.operations:
            smaller, _ = result.history.project(lambda o, u=op.uid: o.uid != u)
            assert needs_two_writes(smaller) is None

    def test_irreducible_input_returned_unchanged(self):
        h = parse_history("p: w(x)1")
        result = shrink_history(h, _holds_if(lambda c: True))
        assert result.history == h
        assert result.steps == 0

    def test_attempts_counted_and_bounded(self):
        h = parse_history("p: w(x)1 w(x)2 w(x)3 | q: w(y)4 w(y)5 w(y)6")
        result = shrink_history(h, _holds_if(lambda c: True), max_attempts=3)
        assert result.attempts <= 3 + 1  # one in-flight candidate may finish

    def test_predicate_must_hold_on_input(self):
        h = parse_history("p: w(x)1")
        with pytest.raises(ValueError, match="does not hold"):
            shrink_history(h, _holds_if(lambda c: False))

    def test_predicate_rechecked_on_final_history(self):
        # The returned discrepancy is the one the *minimal* history exhibits.
        h = parse_history("p: w(x)1 w(y)2")
        def predicate(c):
            n = len(c.operations)
            return Discrepancy("synthetic", ("SC",), f"ops={n}") if n >= 1 else None
        result = shrink_history(h, predicate)
        assert result.discrepancy.detail == "ops=1"
