"""Tests for the JSONL discrepancy corpus."""

import pytest

from repro.core.errors import DiffError, EngineError
from repro.diff import CORPUS_VERSION, DiscrepancyCorpus, stratum_key
from repro.litmus import format_history, parse_history

H = parse_history("p: w(x)1 r(y)0 | q: w(y)2 r(x)0")
SMALL = parse_history("p: w(x)1")


class TestRecordTypes:
    def test_run_header_carries_version(self, tmp_path):
        path = tmp_path / "c.jsonl"
        with DiscrepancyCorpus(path) as corpus:
            corpus.append_run_header({"seed": 7})
        (record,) = list(DiscrepancyCorpus(path).records())
        assert record["type"] == "run"
        assert record["corpus_version"] == CORPUS_VERSION
        assert record["seed"] == 7

    def test_discrepancy_round_trip(self, tmp_path):
        path = tmp_path / "c.jsonl"
        with DiscrepancyCorpus(path) as corpus:
            corpus.append_discrepancy(
                "tiny@0:000003",
                kind="oracle-disagreement",
                models=("SC",),
                detail="fast=ADMIT, kernel=DENY",
                history=H,
                shrunk=SMALL,
                verdicts={"SC": {"fast": True, "kernel": False}},
                trace="step 1 ...",
                shrink_steps=3,
            )
        (record,) = DiscrepancyCorpus(path).discrepancies()
        assert record["key"] == "tiny@0:000003"
        assert parse_history(record["history"]) == H
        assert parse_history(record["shrunk"]) == SMALL
        assert record["shrink_steps"] == 3
        assert record["verdicts"]["SC"]["kernel"] is False

    def test_litmus_round_trip(self, tmp_path):
        path = tmp_path / "c.jsonl"
        expected = {"SC": False, "TSO": True}
        with DiscrepancyCorpus(path) as corpus:
            corpus.append_litmus("separator:TSO-not-SC", H, expected, origin="fuzz")
        ((key, history, got),) = DiscrepancyCorpus(path).litmus_entries()
        assert key == "separator:TSO-not-SC"
        assert history == H
        assert got == expected

    def test_empty_keys_rejected(self, tmp_path):
        corpus = DiscrepancyCorpus(tmp_path / "c.jsonl")
        with pytest.raises(DiffError, match="key"):
            corpus.append_discrepancy("", kind="k", models=(), detail="", history=H)
        with pytest.raises(DiffError, match="key"):
            corpus.append_litmus("", H, {})

    def test_malformed_litmus_record_rejected(self, tmp_path):
        path = tmp_path / "c.jsonl"
        path.write_text('{"type":"litmus","key":"k"}\n')
        with pytest.raises(DiffError, match="malformed litmus"):
            DiscrepancyCorpus(path).litmus_entries()


class TestResume:
    def test_progress_last_wins(self, tmp_path):
        path = tmp_path / "c.jsonl"
        stratum = stratum_key("tiny", 0)
        with DiscrepancyCorpus(path) as corpus:
            corpus.append_progress(stratum, 10)
            corpus.append_progress(stratum_key("small", 0), 5)
            corpus.append_progress(stratum, 25)
        assert DiscrepancyCorpus(path).completed() == {
            "tiny@0": 25,
            "small@0": 5,
        }

    def test_negative_progress_rejected(self, tmp_path):
        with pytest.raises(DiffError, match="progress"):
            DiscrepancyCorpus(tmp_path / "c.jsonl").append_progress("tiny@0", -1)

    def test_missing_file_is_empty(self, tmp_path):
        corpus = DiscrepancyCorpus(tmp_path / "absent.jsonl")
        assert corpus.completed() == {}
        assert corpus.litmus_entries() == []


class TestJsonlSubstrate:
    def test_truncated_tail_skipped(self, tmp_path):
        path = tmp_path / "c.jsonl"
        with DiscrepancyCorpus(path) as corpus:
            corpus.append_progress("tiny@0", 10)
        text = path.read_text()
        path.write_text(text + text[: len(text) // 2])  # cut mid-record
        assert DiscrepancyCorpus(path).completed() == {"tiny@0": 10}

    def test_interior_corruption_raises(self, tmp_path):
        path = tmp_path / "c.jsonl"
        path.write_text('oops\n{"type":"progress","stratum":"tiny@0","done":3}\n')
        with pytest.raises(EngineError, match="line 1"):
            DiscrepancyCorpus(path).completed()

    def test_histories_stored_as_oneline_litmus(self, tmp_path):
        # The corpus is greppable: records carry litmus text, not op dumps.
        path = tmp_path / "c.jsonl"
        with DiscrepancyCorpus(path) as corpus:
            corpus.append_litmus("k", H, {})
        assert format_history(H, oneline=True) in path.read_text()
