"""Tests for the fuzzer's stratified shape presets."""

import numpy as np
import pytest

from repro.checking.models import MODELS
from repro.core.errors import DiffError
from repro.diff import DEFAULT_SHAPES, SHAPE_PRESETS, ShapePreset, resolve_shapes


class TestPresetTable:
    def test_default_shapes_are_registered(self):
        assert set(DEFAULT_SHAPES) <= set(SHAPE_PRESETS)

    def test_machine_presets_pair_with_known_models(self):
        for preset in SHAPE_PRESETS.values():
            if preset.machine is not None:
                assert preset.machine_model in MODELS

    def test_structural_presets_have_no_machine_model(self):
        assert SHAPE_PRESETS["small"].machine_model is None

    def test_unknown_machine_rejected(self):
        with pytest.raises(DiffError, match="unknown machine"):
            ShapePreset("bad", machine="nonsense")


class TestGeneration:
    def test_deterministic_per_seed(self):
        for preset in SHAPE_PRESETS.values():
            a = preset.generate(np.random.default_rng(3))
            b = preset.generate(np.random.default_rng(3))
            assert a == b, preset.name

    def test_structural_shape_respected(self):
        preset = SHAPE_PRESETS["wide"]
        h = preset.generate(np.random.default_rng(0))
        assert len(h.procs) == preset.procs
        assert all(len(h.ops_of(p)) == preset.ops_per_proc for p in h.procs)
        assert set(h.locations) <= set(preset.locations)

    def test_machine_trace_admitted_by_paired_model(self):
        # The operational-soundness leg: a machine's trace is allowed by
        # the machine's own model, by construction.
        for name in ("machine:sc", "machine:pram", "machine:causal"):
            preset = SHAPE_PRESETS[name]
            h = preset.generate(np.random.default_rng(5))
            assert MODELS[preset.machine_model].check(h).allowed, name

    def test_noisy_preset_carries_extra_values(self):
        assert SHAPE_PRESETS["noisy"].values == (97, 98, 99)


class TestResolveShapes:
    def test_default_keyword(self):
        assert resolve_shapes(("default",)) == resolve_shapes("default")
        assert [p.name for p in resolve_shapes("default")] == list(DEFAULT_SHAPES)

    def test_empty_selection_is_default(self):
        assert resolve_shapes(()) == resolve_shapes("default")

    def test_all_keyword(self):
        assert [p.name for p in resolve_shapes("all")] == list(SHAPE_PRESETS)

    def test_comma_string(self):
        assert [p.name for p in resolve_shapes("tiny,deep")] == ["tiny", "deep"]

    def test_unknown_preset_rejected(self):
        with pytest.raises(DiffError, match="unknown shape preset.*nonsense"):
            resolve_shapes("tiny,nonsense")
