"""Tests for the differential-fuzzing campaign driver."""

import pytest

from repro.core.errors import DiffError
from repro.diff import DiscrepancyCorpus, FuzzConfig, run_fuzz
from repro.diff import fuzz as fuzz_module
from repro.diff.oracles import panel_verdicts


class TestFuzzConfig:
    def test_zero_count_rejected(self):
        with pytest.raises(DiffError, match="count"):
            FuzzConfig(count=0)

    def test_unknown_model_rejected(self):
        with pytest.raises(DiffError, match="unknown model"):
            FuzzConfig(models=("SC", "Bogus"))

    def test_unknown_shape_rejected(self):
        with pytest.raises(DiffError, match="unknown shape"):
            FuzzConfig(shapes=("nonsense",))

    def test_describe_resolves_shapes(self):
        desc = FuzzConfig(shapes=("tiny", "deep")).describe()
        assert desc["shapes"] == ["tiny", "deep"]


class TestCleanCampaign:
    def test_small_campaign_is_clean(self):
        report = run_fuzz(FuzzConfig(seed=0, count=20, shapes=("tiny", "small")))
        assert report.clean
        assert report.checked == 20
        assert report.per_shape == {"tiny": 10, "small": 10}
        assert "no discrepancies" in report.render()

    def test_deterministic(self):
        config = FuzzConfig(seed=3, count=10, shapes=("tiny",))
        a, b = run_fuzz(config), run_fuzz(config)
        assert a.checked == b.checked and a.findings == b.findings

    def test_quota_remainder_goes_to_earlier_shapes(self):
        report = run_fuzz(FuzzConfig(seed=0, count=5, shapes=("tiny", "small")))
        assert report.per_shape == {"tiny": 3, "small": 2}


class TestResume:
    def test_resume_skips_checked_samples(self, tmp_path):
        config = FuzzConfig(seed=0, count=12, shapes=("tiny", "small"))
        path = tmp_path / "c.jsonl"
        with DiscrepancyCorpus(path) as corpus:
            first = run_fuzz(config, corpus=corpus)
        assert first.checked == 12
        with DiscrepancyCorpus(path) as corpus:
            second = run_fuzz(config, corpus=corpus, resume=True)
        assert second.checked == 0
        assert second.skipped == 12

    def test_resume_without_corpus_rejected(self):
        with pytest.raises(DiffError, match="corpus"):
            run_fuzz(FuzzConfig(count=1), resume=True)


class TestInjectedDiscrepancy:
    """End-to-end on a *forced* bug: the real panel is clean, so the
    finding/shrinking/recording path is exercised by lying about the
    legacy solver's verdict on SC."""

    @pytest.fixture
    def lying_panel(self, monkeypatch):
        def _panel(history, models):
            panel = panel_verdicts(history, models)
            row = panel.get("SC")
            if row is not None and "legacy" in row:
                row["legacy"] = not row["kernel"]
            return panel

        monkeypatch.setattr(fuzz_module, "panel_verdicts", _panel)

    def test_finding_shrunk_and_recorded(self, lying_panel, tmp_path):
        path = tmp_path / "c.jsonl"
        config = FuzzConfig(seed=0, count=3, shapes=("tiny",), models=("SC",))
        with DiscrepancyCorpus(path) as corpus:
            report = run_fuzz(config, corpus=corpus)
        assert not report.clean
        assert len(report.findings) == 3
        for finding in report.findings:
            assert finding.discrepancy.kind == "oracle-disagreement"
            assert finding.discrepancy.models == ("SC",)
            # The lie survives any deletion, so the witness is 1-minimal.
            assert len(finding.minimal_history.operations) == 1
            assert finding.trace  # kernel trace attached
        records = DiscrepancyCorpus(path).discrepancies()
        assert len(records) == 3
        assert all(r["kind"] == "oracle-disagreement" for r in records)
        assert all("shrunk" in r for r in records)
        assert "DISCREPANCY" in report.render()

    def test_no_shrink_keeps_original(self, lying_panel):
        config = FuzzConfig(
            seed=0, count=2, shapes=("tiny",), models=("SC",), shrink=False
        )
        report = run_fuzz(config)
        for finding in report.findings:
            assert finding.shrunk is None
            assert finding.minimal_history == finding.history


class TestHarvestFixtures:
    def test_fixtures_validate_on_replay(self):
        from repro.diff import harvest_fixtures
        from repro.diff.oracles import agreed_verdicts, find_discrepancies

        config = FuzzConfig(seed=0, count=60, shapes=("tiny", "small"))
        fixtures = harvest_fixtures(config)
        assert fixtures  # tiny/small strata separate at least one edge
        for key, history, expected, origin in fixtures:
            assert key.startswith("separator:")
            assert "fuzz(seed=0" in origin
            panel = panel_verdicts(history, config.models)
            assert find_discrepancies(panel) == []
            assert agreed_verdicts(panel) == expected
