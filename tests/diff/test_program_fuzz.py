"""Tests for the program fuzz strata: static DRF verdict vs dynamic races."""

import numpy as np
import pytest

from repro.core.errors import DiffError
from repro.diff import DiscrepancyCorpus, FuzzConfig, run_fuzz
from repro.diff.programs import (
    PROGRAM_SHAPES,
    GeneratedProgram,
    program_discrepancy,
    random_program,
    resolve_program_shapes,
    shrink_program,
)
from repro.programs.pseudocode import parse_program
from repro.staticcheck import analyze_program


class TestShapes:
    def test_wildcard_expands_to_every_stratum(self):
        shapes = resolve_program_shapes(("program:*",))
        assert {s.name for s in shapes} == set(PROGRAM_SHAPES)

    def test_duplicates_are_dropped(self):
        shapes = resolve_program_shapes(
            ("program:indexed", "program:*", "program:indexed")
        )
        assert len(shapes) == len(PROGRAM_SHAPES)

    def test_unknown_program_shape_rejected_by_config(self):
        with pytest.raises(DiffError, match="program:"):
            FuzzConfig(shapes=("program:bogus",))

    def test_describe_lists_both_shape_kinds(self):
        desc = FuzzConfig(shapes=("tiny", "program:indexed")).describe()
        assert "tiny" in desc["shapes"]
        assert "program:indexed" in desc["shapes"]


class TestGeneration:
    @pytest.mark.parametrize("name", sorted(PROGRAM_SHAPES))
    def test_samples_parse_and_analyze(self, name):
        shape = PROGRAM_SHAPES[name]
        rng = np.random.default_rng(7)
        for _ in range(20):
            sample = random_program(rng, shape)
            program = parse_program(sample.text, shared=sample.shared)
            analyze_program(program, threads=sample.threads)

    def test_generation_is_deterministic(self):
        shape = PROGRAM_SHAPES["program:branchy"]
        a = [random_program(np.random.default_rng(3), shape) for _ in range(5)]
        b = [random_program(np.random.default_rng(3), shape) for _ in range(5)]
        assert a == b

    def test_render_carries_the_shared_header(self):
        sample = GeneratedProgram("x := 1\n", ("x", "y"))
        assert sample.render().startswith("# shared: x, y\n")

    def test_handshake_samples_terminate(self):
        # Each thread publishes its own flag before awaiting the peer's,
        # so the oracle's bounded runs complete.
        shape = PROGRAM_SHAPES["program:handshake"]
        rng = np.random.default_rng(11)
        sample = random_program(rng, shape)
        assert "flag[i] := 1" in sample.text
        assert "await flag[1 - i] == 1" in sample.text


class TestOracle:
    def test_covered_races_are_not_discrepancies(self):
        # A racy program the static analysis flags: dynamic races are
        # covered, so the oracle stays silent.
        sample = GeneratedProgram("x := 1\nt0 := read x\n", ("x", "y"))
        assert program_discrepancy(sample) is None

    def test_unsound_report_is_caught(self, monkeypatch):
        # Force the static layer to claim it covers nothing: every dynamic
        # race now becomes a static-unsound discrepancy.
        from repro.diff import programs as programs_module

        monkeypatch.setattr(
            programs_module, "report_covers_races", lambda report, races: False
        )
        sample = GeneratedProgram("x := 1\nt0 := read x\n", ("x", "y"))
        found = program_discrepancy(sample)
        assert found is not None
        discrepancy, history = found
        assert discrepancy.kind == "static-unsound"
        assert "progcheck" in discrepancy.models
        assert sample.text.strip() in discrepancy.detail
        assert history.operations

    def test_shrinking_minimizes_the_program(self, monkeypatch):
        from repro.diff import programs as programs_module

        monkeypatch.setattr(
            programs_module, "report_covers_races", lambda report, races: False
        )
        sample = GeneratedProgram(
            "m := 0\nx := 1\nt0 := read x\ny := 2 sync\n", ("x", "y")
        )
        small = shrink_program(sample)
        assert len(small.text.splitlines()) < len(sample.text.splitlines())
        assert program_discrepancy(small) is not None


class TestCampaign:
    def test_program_only_campaign_is_clean(self):
        report = run_fuzz(
            FuzzConfig(seed=0, count=40, shapes=("program:*",))
        )
        assert report.clean
        assert report.checked == 40
        assert set(report.per_shape) == set(PROGRAM_SHAPES)

    def test_program_campaign_is_deterministic(self):
        config = FuzzConfig(seed=5, count=12, shapes=("program:indexed",))
        a, b = run_fuzz(config), run_fuzz(config)
        assert a.checked == b.checked and a.findings == b.findings

    def test_mixed_campaign_runs_both_kinds(self):
        report = run_fuzz(
            FuzzConfig(seed=0, count=10, shapes=("tiny", "program:straightline"))
        )
        assert report.checked == 10
        assert report.per_shape == {"tiny": 5, "program:straightline": 5}

    def test_program_campaign_resumes(self, tmp_path):
        config = FuzzConfig(seed=0, count=8, shapes=("program:branchy",))
        path = tmp_path / "c.jsonl"
        with DiscrepancyCorpus(path) as corpus:
            first = run_fuzz(config, corpus=corpus)
        assert first.checked == 8
        with DiscrepancyCorpus(path) as corpus:
            second = run_fuzz(config, corpus=corpus, resume=True)
        assert second.checked == 0 and second.skipped == 8

    def test_findings_carry_the_program_text(self, monkeypatch):
        # Break the static layer: every dynamic race becomes a finding,
        # proving the campaign wiring (finding key, shape, rendered
        # program in the discrepancy detail) end to end.
        from repro.diff import programs as programs_module

        monkeypatch.setattr(
            programs_module, "report_covers_races", lambda report, races: False
        )
        report = run_fuzz(
            FuzzConfig(
                seed=0, count=6, shapes=("program:straightline",), shrink=False
            )
        )
        assert not report.clean
        finding = report.findings[0]
        assert finding.shape == "program:straightline"
        assert finding.discrepancy.kind == "static-unsound"
        assert "# shared:" in finding.discrepancy.detail
