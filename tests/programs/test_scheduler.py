"""Tests for the scheduler policies."""

import pytest

from repro.core import SchedulerError
from repro.programs import (
    DelayDeliveriesScheduler,
    EagerDeliveryScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    ScriptedScheduler,
)

EVENTS = [("thread", "p"), ("thread", "q"), ("machine", ("deliver", "p", "q"))]


class TestRandomScheduler:
    def test_reproducible_from_seed(self):
        a = [RandomScheduler(7).choose(EVENTS) for _ in range(10)]
        s = RandomScheduler(7)
        b = [s.choose(EVENTS) if i == 0 else s.choose(EVENTS) for i in range(1)]
        s2 = RandomScheduler(7)
        seq1 = [s2.choose(EVENTS) for _ in range(10)]
        s3 = RandomScheduler(7)
        seq2 = [s3.choose(EVENTS) for _ in range(10)]
        assert seq1 == seq2

    def test_reset_restores_sequence(self):
        s = RandomScheduler(3)
        first = [s.choose(EVENTS) for _ in range(5)]
        s.reset()
        assert [s.choose(EVENTS) for _ in range(5)] == first

    def test_in_range(self):
        s = RandomScheduler(1)
        assert all(0 <= s.choose(EVENTS) < len(EVENTS) for _ in range(50))


class TestRoundRobin:
    def test_cycles(self):
        s = RoundRobinScheduler()
        assert [s.choose(EVENTS) for _ in range(4)] == [0, 1, 2, 0]


class TestScripted:
    def test_follows_script_then_zero(self):
        s = ScriptedScheduler([2, 1])
        assert s.choose(EVENTS) == 2
        assert s.choose(EVENTS) == 1
        assert s.choose(EVENTS) == 0

    def test_records_decision_widths(self):
        s = ScriptedScheduler([])
        s.choose(EVENTS)
        s.choose(EVENTS[:2])
        assert s.decisions == [3, 2]

    def test_out_of_range_script_raises(self):
        s = ScriptedScheduler([5])
        with pytest.raises(SchedulerError):
            s.choose(EVENTS)


class TestAdversaries:
    def test_delay_deliveries_prefers_threads(self):
        s = DelayDeliveriesScheduler()
        idx = s.choose(EVENTS)
        assert EVENTS[idx][0] == "thread"

    def test_delay_deliveries_fires_machine_when_forced(self):
        s = DelayDeliveriesScheduler()
        only_machine = [("machine", "k1"), ("machine", "k2")]
        assert s.choose(only_machine) == 0

    def test_eager_prefers_machine(self):
        s = EagerDeliveryScheduler()
        idx = s.choose(EVENTS)
        assert EVENTS[idx][0] == "machine"

    def test_eager_runs_threads_when_quiescent(self):
        s = EagerDeliveryScheduler()
        only_threads = [("thread", "p"), ("thread", "q")]
        assert s.choose(only_threads) in (0, 1)
