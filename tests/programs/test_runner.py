"""Tests for the program runner and the exhaustive explorer."""

import pytest

from repro.core import ProgramError
from repro.machines import PRAMMachine, SCMachine
from repro.programs import (
    CsEnter,
    CsExit,
    Read,
    RoundRobinScheduler,
    Write,
    explore,
    run,
)


def thread(ops):
    def factory():
        def gen():
            for op in ops:
                yield op
        return gen()
    return factory


class TestRun:
    def test_records_history(self):
        m = SCMachine(("p", "q"))
        threads = {
            "p": thread([Write("x", 1)]),
            "q": thread([Read("x")]),
        }
        result = run(m, threads, RoundRobinScheduler())
        assert result.completed
        assert len(result.history.operations) == 2

    def test_read_values_delivered_to_thread(self):
        observed = []

        def factory():
            def gen():
                v = yield Read("x")
                observed.append(v)
            return gen()

        m = SCMachine(("p",))
        m.write("p", "x", 42)  # pre-seeded state... recorded too
        run(m, {"p": factory}, RoundRobinScheduler())
        assert observed == [42]

    def test_cs_monitoring(self):
        m = SCMachine(("p", "q"))
        threads = {
            "p": thread([CsEnter(), CsExit()]),
            "q": thread([CsEnter(), CsExit()]),
        }
        result = run(m, threads, RoundRobinScheduler())
        # Round-robin interleaves enter/enter/exit/exit: both inside at once.
        assert result.max_in_cs == 2
        assert result.mutex_violation
        assert len(result.cs_events) == 4

    def test_unknown_thread_proc_rejected(self):
        m = SCMachine(("p",))
        with pytest.raises(ProgramError):
            run(m, {"z": thread([])}, RoundRobinScheduler())

    def test_double_cs_enter_rejected(self):
        m = SCMachine(("p",))
        with pytest.raises(ProgramError):
            run(m, {"p": thread([CsEnter(), CsEnter()])}, RoundRobinScheduler())

    def test_cs_exit_without_enter_rejected(self):
        m = SCMachine(("p",))
        with pytest.raises(ProgramError):
            run(m, {"p": thread([CsExit()])}, RoundRobinScheduler())

    def test_step_bound_marks_incomplete(self):
        def spinner():
            def gen():
                while True:
                    _ = yield Read("x")
            return gen()

        m = SCMachine(("p",))
        result = run(m, {"p": spinner}, RoundRobinScheduler(), max_steps=10)
        assert not result.completed and result.steps == 10

    def test_empty_thread_finishes(self):
        m = SCMachine(("p",))
        result = run(m, {"p": thread([])}, RoundRobinScheduler())
        assert result.completed and result.steps == 0


class TestExplore:
    def test_enumerates_all_interleavings_on_sc(self):
        # Two single-write threads on SC: 2 interleavings, identical final
        # memory; histories differ only in recording order (identical here),
        # so we count runs.
        def setup():
            m = SCMachine(("p", "q"))
            return m, {
                "p": thread([Write("x", 1)]),
                "q": thread([Write("x", 2)]),
            }

        runs = list(explore(setup, max_steps=10))
        assert len(runs) == 2
        assert all(r.completed for r in runs)

    def test_explores_machine_nondeterminism(self):
        # One writer, one reader on PRAM: the reader may or may not have
        # received the update; both outcomes must appear.
        def setup():
            m = PRAMMachine(("p", "q"))
            return m, {
                "p": thread([Write("x", 1)]),
                "q": thread([Read("x")]),
            }

        outcomes = {r.history.op("q", 0).value for r in explore(setup, max_steps=10)}
        assert outcomes == {0, 1}

    def test_max_runs_cap(self):
        def setup():
            m = SCMachine(("p", "q"))
            return m, {
                "p": thread([Write("x", 1), Write("y", 2)]),
                "q": thread([Write("z", 3), Write("w", 4)]),
            }

        runs = list(explore(setup, max_steps=20, max_runs=3))
        assert len(runs) == 3

    def test_distinct_schedules_produce_distinct_decisions(self):
        def setup():
            m = SCMachine(("p", "q"))
            return m, {
                "p": thread([Write("x", 1)]),
                "q": thread([Read("x")]),
            }

        values = [r.history.op("q", 0).value for r in explore(setup, max_steps=10)]
        assert sorted(values) == [0, 1]
