"""Tests for the pseudocode language and the Figure 6 text."""

import pytest

from repro.core import ParseError, ProgramError
from repro.machines import RCMachine, SCMachine
from repro.programs import DelayDeliveriesScheduler, RandomScheduler, run
from repro.programs.figure6 import FIGURE6_TEXT, figure6_program
from repro.programs.pseudocode import parse_program


def run_thread(text, machine=None, shared=(), **params):
    machine = machine or SCMachine(("t",))
    program = parse_program(text, shared=shared)
    result = run(machine, {"t": lambda: program.thread(**params)}, RandomScheduler(0))
    assert result.completed
    return machine, result


class TestStatements:
    def test_local_assignment_no_memory_op(self):
        machine, result = run_thread("x := 41\nx := x + 1\n")
        assert len(result.history.operations) == 0

    def test_bracketed_write_is_shared(self):
        machine, _ = run_thread("a[3] := 7\n")
        assert machine.read("t", "a[3]") == 7

    def test_declared_shared_name(self):
        machine, _ = run_thread("tok := 5\n", shared=("tok",))
        assert machine.read("t", "tok") == 5

    def test_shared_read(self):
        machine = SCMachine(("t",))
        machine.write("t", "x", 9)
        machine, result = run_thread("v := read x\ny[v] := 1\n", machine=machine)
        assert machine.read("t", "y[9]") == 1

    def test_sync_suffix_labels_operation(self):
        machine, result = run_thread("a[0] := 1 sync\nv := read a[0] sync\n")
        kinds = [(op.kind.value, op.labeled) for op in result.history.ops_of("t")]
        assert kinds == [("w", True), ("r", True)]

    def test_await_spins_until_value(self):
        # Two threads: one raises the flag, the other awaits it.
        program = parse_program("await flag == 1\ndone[0] := 1\n")
        setter = parse_program("flag := 1\n", shared=("flag",))
        machine = SCMachine(("a", "b"))
        result = run(
            machine,
            {"a": lambda: program.thread(), "b": lambda: setter.thread()},
            RandomScheduler(3),
            max_steps=500,
        )
        assert result.completed
        assert machine.read("a", "done[0]") == 1

    def test_index_expressions_evaluated(self):
        machine, _ = run_thread("i := 2\na[i * 2] := 5\n")
        assert machine.read("t", "a[4]") == 5


class TestControlFlow:
    def test_if_elif_else(self):
        text = """
x := 2
if x == 1:
  r[0] := 1
elif x == 2:
  r[0] := 2
else:
  r[0] := 3
"""
        machine, _ = run_thread(text)
        assert machine.read("t", "r[0]") == 2

    def test_while_with_break(self):
        text = """
k := 0
while true:
  k := k + 1
  if k == 3:
    break
out[0] := k
"""
        machine, _ = run_thread(text)
        assert machine.read("t", "out[0]") == 3

    def test_for_inclusive_range(self):
        text = """
s := 0
for j in 1..4:
  s := s + j
out[0] := s
"""
        machine, _ = run_thread(text)
        assert machine.read("t", "out[0]") == 10

    def test_continue(self):
        text = """
s := 0
for j in 0..4:
  if j == 2:
    continue
  s := s + 1
out[0] := s
"""
        machine, _ = run_thread(text)
        assert machine.read("t", "out[0]") == 4

    def test_cs_markers(self):
        _, result = run_thread("cs_enter\ncs_exit\n")
        assert [kind for _, _, kind in result.cs_events] == ["enter", "exit"]


class TestParseErrors:
    def test_odd_indent(self):
        with pytest.raises(ParseError):
            parse_program("if 1:\n   x := 1\n")

    def test_garbage_statement(self):
        with pytest.raises(ParseError):
            parse_program("frobnicate the memory\n")

    def test_await_without_comparison(self):
        with pytest.raises(ParseError):
            parse_program("await flag\n")

    def test_read_into_location_rejected(self):
        with pytest.raises(ParseError):
            parse_program("a[0] := read x\n")

    def test_runtime_expression_error(self):
        program = parse_program("x := nosuchname + 1\n")
        machine = SCMachine(("t",))
        with pytest.raises(ProgramError):
            run(machine, {"t": lambda: program.thread()}, RandomScheduler(0))


class TestFigure6:
    def test_matches_handwritten_bakery_trace_shape(self):
        # On SC with a serial schedule both versions perform the same
        # sync-operation sequence.
        from repro.programs.mutex import bakery_thread

        machine = SCMachine(("p0",))
        program = figure6_program(1)
        result = run(machine, {"p0": program["p0"]}, RandomScheduler(0))
        ops_pseudo = [
            (op.kind.value, op.location, op.value)
            for op in result.history.ops_of("p0")
        ]
        machine2 = SCMachine(("p0",))
        result2 = run(
            machine2,
            {"p0": lambda: bakery_thread(0, 1)},
            RandomScheduler(0),
        )
        ops_hand = [
            (op.kind.value, op.location, op.value)
            for op in result2.history.ops_of("p0")
        ]
        assert ops_pseudo == ops_hand

    def test_safe_on_sc(self):
        for seed in range(25):
            machine = SCMachine(("p0", "p1"))
            result = run(
                machine, figure6_program(2), RandomScheduler(seed), max_steps=5000
            )
            assert result.completed and not result.mutex_violation

    def test_safe_on_rc_sc(self):
        for seed in range(25):
            machine = RCMachine(("p0", "p1"), labeled_mode="sc")
            result = run(
                machine, figure6_program(2), RandomScheduler(seed), max_steps=5000
            )
            assert not result.mutex_violation

    def test_violates_on_rc_pc(self):
        machine = RCMachine(("p0", "p1"), labeled_mode="pc")
        result = run(
            machine,
            figure6_program(2),
            DelayDeliveriesScheduler(),
            max_steps=5000,
        )
        assert result.mutex_violation

    def test_text_mentions_the_paper_structure(self):
        assert "choosing[i]" in FIGURE6_TEXT
        assert "number[i]" in FIGURE6_TEXT
        assert "sync" in FIGURE6_TEXT
