"""Tests for the propagation-probability-biased scheduler."""

import pytest

from repro.core import SchedulerError
from repro.machines import RCMachine
from repro.programs import BiasedScheduler, run
from repro.programs.mutex import bakery_program

EVENTS = [("thread", "p"), ("machine", "k1"), ("machine", "k2")]


class TestBiasedScheduler:
    def test_probability_validated(self):
        with pytest.raises(SchedulerError):
            BiasedScheduler(0, p_machine=1.5)

    def test_extremes(self):
        always = BiasedScheduler(0, p_machine=1.0)
        assert all(EVENTS[always.choose(EVENTS)][0] == "machine" for _ in range(20))
        never = BiasedScheduler(0, p_machine=0.0)
        assert all(EVENTS[never.choose(EVENTS)][0] == "thread" for _ in range(20))

    def test_machine_only_events_always_served(self):
        s = BiasedScheduler(0, p_machine=0.0)
        only_machine = [("machine", "a"), ("machine", "b")]
        assert s.choose(only_machine) in (0, 1)

    def test_reproducible(self):
        a = BiasedScheduler(9, 0.4)
        b = BiasedScheduler(9, 0.4)
        assert [a.choose(EVENTS) for _ in range(30)] == [
            b.choose(EVENTS) for _ in range(30)
        ]

    def test_reset(self):
        s = BiasedScheduler(3, 0.4)
        first = [s.choose(EVENTS) for _ in range(15)]
        s.reset()
        assert [s.choose(EVENTS) for _ in range(15)] == first

    def test_violation_rate_monotone_in_propagation(self):
        """Slower propagation yields at least as many Bakery violations."""
        def rate(p_machine: float) -> int:
            violations = 0
            for seed in range(40):
                result = run(
                    RCMachine(("p0", "p1"), labeled_mode="pc"),
                    bakery_program(2),
                    BiasedScheduler(seed, p_machine),
                    max_steps=8000,
                )
                violations += result.mutex_violation
            return violations

        slow, fast = rate(0.05), rate(0.8)
        assert slow > fast
        assert slow > 0
