"""Tests for the fairness-bounded scheduler."""

from repro.machines import PRAMMachine
from repro.programs import DelayDeliveriesScheduler, FairScheduler, run
from repro.programs.workloads import ping_pong


class TestFairScheduler:
    def test_quota_forces_deliveries(self):
        s = FairScheduler(seed=1, quota=2)
        events_threads = [("thread", "p"), ("thread", "q")]
        events_mixed = events_threads + [("machine", "k")]
        # Burn through the quota with thread-only choices.
        for _ in range(2):
            s.choose(events_threads)
        # The next mixed choice must be the machine event.
        idx = s.choose(events_mixed)
        assert events_mixed[idx][0] == "machine"

    def test_reset_restores_sequence(self):
        events = [("thread", "p"), ("machine", "a"), ("machine", "b")]
        s = FairScheduler(seed=5, quota=3)
        first = [s.choose(events) for _ in range(10)]
        s.reset()
        assert [s.choose(events) for _ in range(10)] == first

    def test_ping_pong_terminates_under_fairness(self):
        # Under pure delivery delay ping-pong spins forever; the fair
        # scheduler's quota guarantees progress.
        m = PRAMMachine(("p", "q"))
        result = run(m, ping_pong(3), FairScheduler(seed=2, quota=3), max_steps=50_000)
        assert result.completed

    def test_ping_pong_starves_under_delay_adversary(self):
        # The control: the starvation adversary really does hang it.
        m = PRAMMachine(("p", "q"))
        result = run(
            m, ping_pong(3), DelayDeliveriesScheduler(), max_steps=2000
        )
        assert not result.completed
