"""Tests for the bounded model-checking utilities."""

from repro.checking import check
from repro.machines import PRAMMachine, SCMachine, TSOMachine
from repro.programs import CsEnter, CsExit, Read, Rmw, Write
from repro.programs.modelcheck import (
    find_schedule,
    reachable_outcomes,
    verify_mutual_exclusion,
)


def thread(ops):
    def factory():
        def gen():
            for op in ops:
                yield op
        return gen()
    return factory


def sb_setup(machine_cls):
    def setup():
        machine = machine_cls(("p", "q"))
        return machine, {
            "p": thread([Write("x", 1), Read("y")]),
            "q": thread([Write("y", 2), Read("x")]),
        }
    return setup


class TestFindSchedule:
    def test_finds_relaxed_outcome_on_tso(self):
        result = find_schedule(
            sb_setup(TSOMachine),
            lambda r: r.history.op("p", 1).value == 0
            and r.history.op("q", 1).value == 0,
            max_steps=40,
        )
        assert result is not None

    def test_never_finds_impossible_outcome_on_sc(self):
        result = find_schedule(
            sb_setup(SCMachine),
            lambda r: r.history.op("p", 1).value == 0
            and r.history.op("q", 1).value == 0,
            max_steps=40,
        )
        assert result is None

    def test_max_runs_caps_search(self):
        calls = []
        result = find_schedule(
            sb_setup(SCMachine),
            lambda r: calls.append(1) or False,
            max_steps=40,
            max_runs=3,
        )
        assert result is None and len(calls) == 3


class TestVerifyMutualExclusion:
    def test_naive_program_unsafe(self):
        def setup():
            machine = SCMachine(("p", "q"))
            return machine, {
                "p": thread([CsEnter(), CsExit()]),
                "q": thread([CsEnter(), CsExit()]),
            }

        report = verify_mutual_exclusion(setup, max_steps=20)
        assert not report.safe
        assert report.witness is not None and report.witness.mutex_violation

    def test_try_lock_safe_on_sc_exhaustively(self):
        # A bounded, loop-free correct protocol: atomic test-and-set,
        # enter only on success.  Small enough to explore *every*
        # schedule; Peterson-style spin loops are out of exhaustive
        # DFS's reach (their schedule trees are astronomically wide).
        def try_lock(i):
            def gen():
                old = yield Rmw("lock", 1)
                if old == 0:
                    yield CsEnter()
                    yield CsExit()
                    yield Write("lock", 0)
            return gen

        def setup():
            machine = SCMachine(("p", "q"))
            return machine, {"p": try_lock(0), "q": try_lock(1)}

        report = verify_mutual_exclusion(setup, max_steps=40)
        assert report.safe and report.exhaustive
        assert report.runs > 1  # genuine exploration happened

    def test_naive_test_then_set_unsafe_even_on_sc(self):
        # A bounded, loop-free broken protocol: test, then set, then
        # enter.  The explorer must find the interleaving where both
        # processors pass the test before either sets the flag.
        # (Unbounded spin-loop programs like Peterson don't suit
        # exhaustive DFS — their violating runs are found by the random
        # and adversarial schedulers in tests/programs/test_mutex.py.)
        def naive(i):
            def gen():
                flag = yield Read("lock")
                if flag == 0:
                    yield Write("lock", 1)
                    yield CsEnter()
                    yield CsExit()
                    yield Write("lock", 0)
            return gen

        def setup():
            machine = SCMachine(("p", "q"))
            return machine, {"p": naive(0), "q": naive(1)}

        report = verify_mutual_exclusion(setup, max_steps=40)
        assert not report.safe
        assert report.witness is not None and report.witness.max_in_cs == 2


class TestReachableOutcomes:
    def test_sc_sb_has_three_outcomes(self):
        outcomes = reachable_outcomes(sb_setup(SCMachine), max_steps=40)
        values = {
            tuple(v for (_, _, v) in key) for key in outcomes
        }
        assert values == {(0, 1), (2, 0), (2, 1)}

    def test_tso_sb_adds_relaxed_outcome(self):
        outcomes = reachable_outcomes(sb_setup(TSOMachine), max_steps=40)
        values = {tuple(v for (_, _, v) in key) for key in outcomes}
        assert (0, 0) in values
        assert values >= {(0, 1), (2, 0), (2, 1)}

    def test_witness_histories_satisfy_the_machines_model(self):
        outcomes = reachable_outcomes(sb_setup(PRAMMachine), max_steps=40)
        for history in outcomes.values():
            assert check(history, "PRAM").allowed
