"""Tests for the pseudocode algorithm texts."""

from repro.machines import RCMachine, SCMachine
from repro.programs import DelayDeliveriesScheduler, RandomScheduler, run
from repro.programs.algorithm_texts import (
    naive_lock_text_program,
    peterson_text_program,
)
from repro.programs.modelcheck import verify_mutual_exclusion
from repro.programs.mutex import peterson_thread


class TestPetersonText:
    def test_matches_handwritten_trace_shape(self):
        m1 = SCMachine(("p0",))
        result1 = run(m1, {"p0": list(peterson_text_program().items())[0][1]}, RandomScheduler(0))
        m2 = SCMachine(("p0",))
        result2 = run(m2, {"p0": lambda: peterson_thread(0)}, RandomScheduler(0))
        shape = lambda r: [
            (op.kind.value, op.location, op.value, op.labeled)
            for op in r.history.ops_of("p0")
        ]
        assert shape(result1) == shape(result2)

    def test_safe_on_sc(self):
        for seed in range(25):
            m = SCMachine(("p0", "p1"))
            result = run(m, peterson_text_program(), RandomScheduler(seed), max_steps=4000)
            assert result.completed and not result.mutex_violation

    def test_breaks_on_rc_pc(self):
        m = RCMachine(("p0", "p1"), labeled_mode="pc")
        result = run(
            m, peterson_text_program(), DelayDeliveriesScheduler(), max_steps=4000
        )
        assert result.mutex_violation


class TestNaiveLockText:
    def test_exhaustively_refuted_on_sc(self):
        def setup():
            return SCMachine(("p0", "p1")), naive_lock_text_program(2)

        report = verify_mutual_exclusion(setup, max_steps=50)
        assert not report.safe
        assert report.witness is not None and report.witness.max_in_cs == 2
