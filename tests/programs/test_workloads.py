"""Tests for the DSM workload programs."""

import pytest

from repro.machines import CoherentMachine, PRAMMachine, SCMachine, TSOMachine
from repro.programs import DelayDeliveriesScheduler, RandomScheduler, run
from repro.programs.workloads import (
    barrier_program,
    ping_pong,
    producer_consumer,
    stale_reads,
    work_queue,
)


class TestProducerConsumer:
    def test_no_stale_reads_on_sc(self):
        for seed in range(30):
            m = SCMachine(("prod", "cons"))
            result = run(m, producer_consumer(3), RandomScheduler(seed), max_steps=3000)
            assert result.completed
            assert stale_reads(result.history, 3) == 0

    def test_no_stale_reads_on_pram(self):
        # PRAM's FIFO channels preserve the data-then-flag order.
        for seed in range(30):
            m = PRAMMachine(("prod", "cons"))
            result = run(m, producer_consumer(3), RandomScheduler(seed), max_steps=3000)
            if result.completed:
                assert stale_reads(result.history, 3) == 0

    def test_stale_reads_reachable_on_coherent_machine(self):
        # Coherence alone propagates locations independently: the flag can
        # overtake the datum.
        found = False
        for seed in range(100):
            m = CoherentMachine(("prod", "cons"))
            result = run(m, producer_consumer(2), RandomScheduler(seed), max_steps=3000)
            if result.completed and stale_reads(result.history, 2) > 0:
                found = True
                break
        assert found, "the coherent machine should leak stale data"

    def test_consumed_values_recorded(self):
        m = SCMachine(("prod", "cons"))
        result = run(m, producer_consumer(2), RandomScheduler(1), max_steps=3000)
        reads = [
            op for op in result.history.ops_of("cons")
            if op.is_read and op.location.startswith("data")
        ]
        assert [op.value for op in reads] == [100, 101]


class TestPingPong:
    @pytest.mark.parametrize("machine_cls", [SCMachine, TSOMachine, PRAMMachine])
    def test_token_strictly_increases(self, machine_cls):
        m = machine_cls(("p", "q"))
        result = run(m, ping_pong(3), RandomScheduler(7), max_steps=20_000)
        assert result.completed
        writes = [
            op.value for op in result.history.operations if op.is_write
        ]
        assert sorted(writes) == list(range(1, 7))

    def test_alternation_on_sc(self):
        m = SCMachine(("p", "q"))
        result = run(m, ping_pong(2), RandomScheduler(3), max_steps=20_000)
        token_writes = sorted(
            (op.value, op.proc)
            for op in result.history.operations
            if op.is_write
        )
        # Odd values from p, even from q.
        for value, proc in token_writes:
            assert proc == ("p" if value % 2 == 1 else "q")


class TestBarrier:
    def test_no_stale_pre_barrier_reads_on_sc(self):
        for seed in range(20):
            m = SCMachine(("p0", "p1", "p2"))
            result = run(m, barrier_program(3), RandomScheduler(seed), max_steps=20_000)
            assert result.completed
            for op in result.history.operations:
                if op.is_read and op.location.startswith("pre["):
                    j = int(op.location[4:-1])
                    assert op.value_read == 10 + j

    def test_stale_pre_barrier_reads_on_coherent_machine(self):
        result = run(
            CoherentMachine(("p0", "p1")),
            barrier_program(2),
            DelayDeliveriesScheduler(),
            max_steps=20_000,
        )
        # With deliveries starved, a flag can arrive (when finally allowed)
        # while the datum is still in flight — but the adversarial
        # scheduler delays everything equally, so probe randomly instead.
        stale = 0
        for seed in range(100):
            r = run(
                CoherentMachine(("p0", "p1")),
                barrier_program(2),
                RandomScheduler(seed),
                max_steps=20_000,
            )
            if not r.completed:
                continue
            for op in r.history.operations:
                if op.is_read and op.location.startswith("pre["):
                    j = int(op.location[4:-1])
                    if op.value_read != 10 + j:
                        stale += 1
        assert stale > 0


class TestWorkQueue:
    @pytest.mark.parametrize(
        "machine_cls", [SCMachine, TSOMachine, PRAMMachine, CoherentMachine]
    )
    def test_every_item_claimed_exactly_once(self, machine_cls):
        for seed in range(20):
            m = machine_cls(("w0", "w1"))
            result = run(m, work_queue(2, 4), RandomScheduler(seed), max_steps=5000)
            assert result.completed
            for i in range(4):
                winners = [
                    op.proc
                    for op in result.history.operations
                    if op.kind.value == "u"
                    and op.location == f"claim[{i}]"
                    and op.read_value == 0
                ]
                assert len(winners) == 1, f"item {i} claimed by {winners}"
