"""Mutual-exclusion algorithm tests across machines.

The experimental heart of Section 5: read/write algorithms (Bakery,
Peterson, Dekker, fast mutex) hold on SC and on RC_sc, and break on
machines with weaker synchronization; the test-and-set spinlock holds
everywhere its RMW is atomic.
"""

import pytest

from repro.machines import PRAMMachine, RCMachine, SCMachine, TSOMachine
from repro.programs import DelayDeliveriesScheduler, RandomScheduler, run
from repro.programs.mutex import (
    bakery_program,
    dekker_program,
    fast_mutex_program,
    peterson_program,
    spinlock_program,
)

SEEDS = range(60)


def no_violation_on(machine_factory, program, *, seeds=SEEDS, max_steps=4000):
    for seed in seeds:
        result = run(machine_factory(), program, RandomScheduler(seed), max_steps=max_steps)
        if result.mutex_violation:
            return False, seed
    return True, None


class TestOnSC:
    @pytest.mark.parametrize(
        "program",
        [
            bakery_program(2, labeled=False),
            peterson_program(labeled=False),
            dekker_program(labeled=False),
            fast_mutex_program(2, labeled=False),
        ],
        ids=["bakery", "peterson", "dekker", "fast-mutex"],
    )
    def test_algorithms_correct_on_sc(self, program):
        ok, seed = no_violation_on(lambda: SCMachine(("p0", "p1")), program)
        assert ok, f"violation on SC with seed {seed}"

    def test_bakery_three_processors_on_sc(self):
        program = bakery_program(3, labeled=False)
        ok, seed = no_violation_on(
            lambda: SCMachine(("p0", "p1", "p2")), program, seeds=range(25)
        )
        assert ok

    def test_spinlock_on_sc(self):
        ok, _ = no_violation_on(
            lambda: SCMachine(("p0", "p1")), spinlock_program(2, labeled=False)
        )
        assert ok


class TestOnRCsc:
    def test_bakery_correct_on_rc_sc(self):
        ok, seed = no_violation_on(
            lambda: RCMachine(("p0", "p1"), labeled_mode="sc"), bakery_program(2)
        )
        assert ok, f"Bakery violated mutual exclusion on RC_sc (seed {seed})"

    def test_bakery_correct_on_rc_sc_adversarial(self):
        result = run(
            RCMachine(("p0", "p1"), labeled_mode="sc"),
            bakery_program(2),
            DelayDeliveriesScheduler(),
            max_steps=4000,
        )
        assert result.completed and not result.mutex_violation

    def test_peterson_correct_on_rc_sc(self):
        ok, _ = no_violation_on(
            lambda: RCMachine(("p0", "p1"), labeled_mode="sc"), peterson_program()
        )
        assert ok


class TestOnRCpc:
    def test_bakery_breaks_on_rc_pc_adversarial(self):
        result = run(
            RCMachine(("p0", "p1"), labeled_mode="pc"),
            bakery_program(2),
            DelayDeliveriesScheduler(),
            max_steps=4000,
        )
        assert result.mutex_violation, "the Section 5 violation should be reachable"

    def test_bakery_breaks_on_rc_pc_random(self):
        found = False
        for seed in range(300):
            result = run(
                RCMachine(("p0", "p1"), labeled_mode="pc"),
                bakery_program(2),
                RandomScheduler(seed),
                max_steps=4000,
            )
            if result.mutex_violation:
                found = True
                break
        assert found

    def test_peterson_breaks_on_rc_pc_adversarial(self):
        result = run(
            RCMachine(("p0", "p1"), labeled_mode="pc"),
            peterson_program(),
            DelayDeliveriesScheduler(),
            max_steps=4000,
        )
        assert result.mutex_violation

    def test_spinlock_survives_rc_pc(self):
        # The RMW acquires atomically at the serialization point, so
        # test-and-set is immune to the weakness that kills Bakery.
        ok, seed = no_violation_on(
            lambda: RCMachine(("p0", "p1"), labeled_mode="pc"),
            spinlock_program(2),
            seeds=range(100),
        )
        assert ok, f"spinlock violated on RC_pc (seed {seed})"


class TestOnWeakUnlabeled:
    def test_peterson_breaks_on_tso(self):
        # Classic: Peterson needs the w->r order TSO relaxes.  The store
        # buffers must be starved of drains for the violation.
        result = run(
            TSOMachine(("p0", "p1")),
            peterson_program(labeled=False),
            DelayDeliveriesScheduler(),
            max_steps=4000,
        )
        assert result.mutex_violation

    def test_bakery_breaks_on_pram(self):
        result = run(
            PRAMMachine(("p0", "p1")),
            bakery_program(2, labeled=False),
            DelayDeliveriesScheduler(),
            max_steps=4000,
        )
        assert result.mutex_violation
