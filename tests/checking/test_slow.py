"""Tests for slow memory — the weakest model in the lattice."""

from repro.checking import MODELS, check
from repro.litmus import CATALOG, parse_history


def slow(text: str) -> bool:
    return check(parse_history(text), "Slow").allowed


class TestSlowSemantics:
    def test_per_writer_per_location_order_preserved(self):
        # The one guarantee slow memory makes: one writer's writes to one
        # location are seen in order.
        assert not slow("p: w(x)1 w(x)2 | q: r(x)2 r(x)1")

    def test_locations_independent(self):
        # MP staleness is fine: x and y propagate independently.
        assert slow("p: w(x)1 w(y)1 | q: r(y)1 r(x)0")

    def test_writers_independent(self):
        # Different writers to the same location may be seen in any order.
        assert slow("p: w(x)1 r(x)1 r(x)2 | q: w(x)2 r(x)2 r(x)1")

    def test_same_location_view_order_still_binds(self):
        # A view is still a legal sequence: once q has seen y=2 it cannot
        # see y revert to 0 (no write puts it back).
        assert not slow("p: w(x)1 w(y)2 | q: r(y)2 r(x)0 r(y)0")

    def test_readers_disagree_on_writer_interleaving(self):
        # Different readers may order two writers' same-location writes
        # oppositely — no mutual consistency.
        assert slow("p: w(x)1 | q: w(x)2 | r: r(x)1 r(x)2 | s: r(x)2 r(x)1")

    def test_legality_still_binds(self):
        assert not slow("p: r(x)7")

    def test_own_same_location_order_binds(self):
        assert not slow("p: w(x)1 r(x)0")


class TestSlowIsTheBottom:
    def test_every_model_contained_in_slow_on_catalog(self):
        for name, t in CATALOG.items():
            h = t.history
            for model in ("SC", "TSO", "PC", "PRAM", "Causal", "Coherence"):
                if check(h, model).allowed:
                    assert check(h, "Slow").allowed, f"{model} ⊄ Slow on {name}"

    def test_strictly_below_pram(self):
        # Slow allows a PRAM-forbidden history: one processor observes
        # another's different-location writes out of program order.
        h = "p: w(x)1 w(y)2 | q: r(y)2 r(x)0"
        assert slow(h)
        assert not check(parse_history(h), "PRAM").allowed

    def test_strictly_below_coherence(self):
        # Slow allows per-location disagreement between processors.
        h = "p: w(x)1 r(x)1 r(x)2 | q: w(x)2 r(x)2 r(x)1"
        assert slow(h)
        assert not check(parse_history(h), "Coherence").allowed


class TestRegistryIntegration:
    def test_spec_shape(self):
        spec = MODELS["Slow"].spec
        assert spec is not None
        assert spec.ordering.name == "po-loc"
        assert spec.mutual_consistency.value == "none"

    def test_generic_agrees(self):
        m = MODELS["Slow"]
        h = parse_history("p: w(x)1 w(x)2 | q: r(x)2 r(x)1")
        assert m.check(h).allowed == m.check_generic(h).allowed
