"""Targeted verdict tests for each model checker.

The catalog tests (tests/litmus) sweep every litmus entry; here each
checker gets focused cases including witness-view validation.
"""

from repro.checking import (
    check_causal,
    check_coherence,
    check_pc,
    check_pc_goodman,
    check_pram,
    check_sc,
    check_tso,
)
from repro.core.view import is_legal_sequence
from repro.litmus import parse_history


class TestSC:
    def test_sequential_program_allowed(self):
        h = parse_history("p: w(x)1 r(x)1")
        assert check_sc(h).allowed

    def test_sb_rejected(self, fig1):
        res = check_sc(fig1)
        assert not res.allowed and res.reason

    def test_witness_views_identical_and_legal(self):
        h = parse_history("p: w(x)1 | q: r(x)1")
        res = check_sc(h)
        assert res.allowed
        views = list(res.views.values())
        assert all(tuple(v) == tuple(views[0]) for v in views)
        assert is_legal_sequence(list(views[0]))

    def test_read_of_unwritten_value_rejected(self):
        h = parse_history("p: r(x)9")
        assert not check_sc(h).allowed


class TestTSO:
    def test_fig1_allowed_with_views(self, fig1):
        res = check_tso(fig1)
        assert res.allowed
        # Witness views must share the write order (mutual consistency).
        orders = [
            [op.uid for op in v.writes_only] for v in res.views.values()
        ]
        assert all(o == orders[0] for o in orders)

    def test_fig2_rejected(self, fig2):
        assert not check_tso(fig2).allowed

    def test_write_read_bypass_but_not_read_read(self):
        # Reads cannot bypass reads: q reads y new then x old is fine only
        # if write order allows; with the causality chain it is not.
        h = parse_history("p: w(x)1 w(y)2 | q: r(y)2 r(x)0")
        assert not check_tso(h).allowed

    def test_own_write_read_early_rejected(self):
        # The paper's ppo same-location edge forbids forwarding shapes.
        h = parse_history("p: w(x)1 r(x)1 r(y)0 | q: w(y)1 r(y)1 r(x)0")
        assert not check_tso(h).allowed

    def test_rmw_falls_back_to_generic(self):
        # Two test-and-sets on one location: exactly one sees 0.
        h = parse_history("p: u(l)0->1 | q: u(l)1->2")
        assert check_tso(h).allowed
        h_bad = parse_history("p: u(l)0->1 | q: u(l)0->2")
        assert not check_tso(h_bad).allowed


class TestPC:
    def test_fig2_allowed(self, fig2):
        assert check_pc(fig2).allowed

    def test_mp_rejected(self):
        h = parse_history("p: w(x)1 w(y)2 | q: r(y)2 r(x)0")
        assert not check_pc(h).allowed

    def test_iriw_allowed(self):
        h = parse_history(
            "p: w(x)1 | q: w(y)1 | r: r(x)1 r(y)0 | s: r(y)1 r(x)0"
        )
        assert check_pc(h).allowed

    def test_coherence_enforced(self):
        h = parse_history("p: w(x)1 w(x)2 | q: r(x)2 r(x)1")
        assert not check_pc(h).allowed


class TestPRAM:
    def test_fig3_allowed(self, fig3):
        res = check_pram(fig3)
        assert res.allowed
        for v in res.views.values():
            assert is_legal_sequence(list(v))

    def test_corr_rejected(self):
        # Remote writes of one processor must be seen in program order.
        h = parse_history("p: w(x)1 w(x)2 | q: r(x)2 r(x)1")
        assert not check_pram(h).allowed

    def test_iriw_allowed(self):
        h = parse_history(
            "p: w(x)1 | q: w(y)1 | r: r(x)1 r(y)0 | s: r(y)1 r(x)0"
        )
        assert check_pram(h).allowed

    def test_mp_rejected(self):
        h = parse_history("p: w(x)1 w(y)2 | q: r(y)2 r(x)0")
        assert not check_pram(h).allowed


class TestCausal:
    def test_fig4_allowed(self, fig4):
        assert check_causal(fig4).allowed

    def test_wrc_rejected(self):
        h = parse_history("p: w(x)1 | q: r(x)1 w(y)2 | r: r(y)2 r(x)0")
        assert not check_causal(h).allowed

    def test_fig3_allowed(self, fig3):
        # Per-location disagreement on concurrent writes is causal.
        assert check_causal(fig3).allowed


class TestCoherence:
    def test_mp_allowed(self):
        # Coherence has no cross-location ordering at all.
        h = parse_history("p: w(x)1 w(y)2 | q: r(y)2 r(x)0")
        assert check_coherence(h).allowed

    def test_corr_rejected(self):
        h = parse_history("p: w(x)1 w(x)2 | q: r(x)2 r(x)1")
        assert not check_coherence(h).allowed

    def test_fig3_rejected(self, fig3):
        assert not check_coherence(fig3).allowed


class TestGoodmanPC:
    def test_is_pram_plus_coherence(self, fig3):
        # fig3 is PRAM but not coherent, so PC-G rejects it.
        assert not check_pc_goodman(fig3).allowed

    def test_sb_allowed(self, fig1):
        assert check_pc_goodman(fig1).allowed

    def test_incomparable_with_dash_pc(self):
        # DASH-PC allows IRIW-with-control shapes that PC-G forbids and
        # vice versa; here we exhibit one direction measured in-catalog:
        # fig2 is DASH-PC-allowed; is it PC-G-allowed too? (It is; the
        # separation shows up in the lattice tests on the enumerated
        # space, which find witnesses in both directions.)
        h = parse_history("p: w(x)1 | q: r(x)1 w(y)1 | r: r(y)1 r(x)0")
        assert check_pc_goodman(h).allowed
