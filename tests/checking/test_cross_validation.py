"""Cross-validation: fast checkers agree with the generic solver.

The fast paths (SC direct, TSO greedy, PRAM merge) are independent
implementations of the same definitions the generic spec-driven solver
interprets; any disagreement on any history is a bug in one of them.
Swept over the full canonical 2×2 space plus random larger histories.
"""

import itertools

import numpy as np
import pytest

from repro.analysis import random_history
from repro.checking import MODELS
from repro.lattice import HistorySpace, canonical_key, enumerate_histories

FAST_MODELS = ("SC", "TSO", "PRAM")


def canonical_2x2():
    space = HistorySpace(procs=2, ops_per_proc=2)
    seen = set()
    for h in enumerate_histories(space):
        k = canonical_key(h)
        if k not in seen:
            seen.add(k)
            yield h


@pytest.mark.parametrize("model", FAST_MODELS)
def test_fast_agrees_with_generic_on_2x2_space(model):
    m = MODELS[model]
    for h in canonical_2x2():
        fast = m.check(h).allowed
        generic = m.check_generic(h).allowed
        assert fast == generic, f"{model} disagrees on:\n{h}"


@pytest.mark.parametrize("model", FAST_MODELS)
def test_fast_agrees_with_generic_on_random_histories(model):
    m = MODELS[model]
    rng = np.random.default_rng(99)
    for _ in range(60):
        h = random_history(rng, procs=2, ops_per_proc=3, locations=("x", "y"))
        fast = m.check(h).allowed
        generic = m.check_generic(h).allowed
        assert fast == generic, f"{model} disagrees on:\n{h}"


def test_fast_agrees_on_three_processors():
    rng = np.random.default_rng(7)
    for _ in range(25):
        h = random_history(rng, procs=3, ops_per_proc=2, locations=("x", "y"))
        for model in FAST_MODELS:
            m = MODELS[model]
            assert m.check(h).allowed == m.check_generic(h).allowed, (
                f"{model} disagrees on:\n{h}"
            )


def test_witness_views_satisfy_spec_requirements():
    """Positive verdicts carry views that really do include δ_p and legality."""
    from repro.core.view import check_view_contents, is_legal_sequence

    for h in itertools.islice(canonical_2x2(), 80):
        for model in ("TSO", "PRAM", "Causal", "PC"):
            res = MODELS[model].check(h)
            if not res.allowed:
                continue
            for proc, view in res.views.items():
                assert is_legal_sequence(list(view)), f"{model} illegal view:\n{h}"
                check_view_contents(list(view), h, proc)
                # δ_p = remote writes must all be present.
                present = {op.uid for op in view}
                for w in h.remote_writes(proc):
                    assert w.uid in present, f"{model} view missing {w}:\n{h}"
