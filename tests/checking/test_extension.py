"""Tests for the legal-linear-extension search kernel."""

import pytest

from repro.checking import count_legal_extensions, find_legal_extension, iter_legal_extensions
from repro.core import CheckerError, read, write
from repro.core.view import is_legal_sequence
from repro.litmus import parse_history
from repro.orders import po_relation
from repro.orders.relation import Relation


class TestFindLegalExtension:
    def test_trivial(self):
        ops = [write("p", 0, "x", 1)]
        out = find_legal_extension(ops, Relation(ops))
        assert out == ops

    def test_respects_constraints(self):
        a, b = write("p", 0, "x", 1), write("q", 0, "x", 2)
        rel = Relation([a, b], [(b, a)])
        out = find_legal_extension([a, b], rel)
        assert out == [b, a]

    def test_legality_forces_order(self):
        # r(x)2 must come after w(x)2 and with no intervening w(x)1.
        w1, w2 = write("p", 0, "x", 1), write("q", 0, "x", 2)
        r = read("r", 0, "x", 2)
        out = find_legal_extension([w1, w2, r], Relation([w1, w2, r]))
        assert out is not None
        assert is_legal_sequence(out)

    def test_unsatisfiable_read(self):
        r = read("p", 0, "x", 9)
        assert find_legal_extension([r], Relation([r])) is None

    def test_cyclic_constraints(self):
        a, b = write("p", 0, "x", 1), write("q", 0, "x", 2)
        rel = Relation([a, b], [(a, b), (b, a)])
        assert find_legal_extension([a, b], rel) is None

    def test_sb_with_program_order_unsatisfiable(self):
        # Figure 1 under full po: the classic SC impossibility.
        h = parse_history("p: w(x)1 r(y)0 | q: w(y)1 r(x)0")
        assert find_legal_extension(h.operations, po_relation(h)) is None

    def test_sb_without_constraints_satisfiable(self):
        h = parse_history("p: w(x)1 r(y)0 | q: w(y)1 r(x)0")
        out = find_legal_extension(h.operations, Relation(h.operations))
        assert out is not None and is_legal_sequence(out)

    def test_deterministic(self):
        h = parse_history("p: w(x)1 w(y)2 | q: r(x)1")
        rel = po_relation(h)
        assert find_legal_extension(h.operations, rel) == find_legal_extension(
            h.operations, rel
        )

    def test_constraints_outside_universe_ignored(self):
        a = write("p", 0, "x", 1)
        foreign = write("z", 0, "q", 9)
        rel = Relation([a, foreign], [(foreign, a)])
        assert find_legal_extension([a], rel) == [a]

    def test_size_limit(self):
        ops = [write("p", i, "x", i + 1) for i in range(65)]
        # Indices must be dense per proc; these are, for a single proc.
        with pytest.raises(CheckerError):
            find_legal_extension(ops, Relation(ops))

    def test_rmw_legality(self):
        w = write("p", 0, "x", 1)
        u = read("q", 0, "x", 1)  # plain read of 1
        from repro.core import rmw

        t = rmw("r", 0, "x", 1, 2)
        out = find_legal_extension([w, u, t], Relation([w, u, t]))
        assert out is not None and is_legal_sequence(out)


class TestIterAndCount:
    def test_count_unconstrained_writes(self):
        a, b = write("p", 0, "x", 1), write("q", 0, "y", 2)
        assert count_legal_extensions([a, b], Relation([a, b])) == 2

    def test_count_respects_legality(self):
        w = write("p", 0, "x", 1)
        r = read("q", 0, "x", 1)
        # r must follow w: only one of the two orders is legal.
        assert count_legal_extensions([w, r], Relation([w, r])) == 1

    def test_iter_limit(self):
        ops = [write(f"p{i}", 0, f"l{i}", i + 1) for i in range(4)]
        out = list(iter_legal_extensions(ops, Relation(ops), limit=5))
        assert len(out) == 5

    def test_iter_yields_legal_extensions(self):
        h = parse_history("p: w(x)1 r(x)1 | q: w(y)2")
        rel = po_relation(h)
        for seq in iter_legal_extensions(h.operations, rel):
            assert is_legal_sequence(seq)
            assert rel.is_linear_extension(seq)
