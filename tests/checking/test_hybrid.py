"""Tests for hybrid consistency (Attiya-Friedman strong/weak operations).

The paper cites hybrid consistency as the other example (besides release
consistency) of distinguishing operation classes in parameter 1.  Strong
operations are labeled; all views agree on one total order of them that
extends program order; weak operations are ordered only relative to the
same processor's strong operations.
"""


from repro.checking import MODELS, check
from repro.litmus import parse_history


def hybrid(text: str) -> bool:
    return check(parse_history(text), "Hybrid").allowed


class TestUnlabeledIsVeryWeak:
    def test_corr_allowed_without_labels(self):
        # Weaker than PRAM: weak ops of one processor may be observed out
        # of program order.
        assert hybrid("p: w(x)1 w(x)2 | q: r(x)2 r(x)1")

    def test_pram_contained_in_unlabeled_hybrid(self):
        samples = [
            "p: w(x)1 r(y)0 | q: w(y)1 r(x)0",
            "p: w(x)1 r(x)1 r(x)2 | q: w(x)2 r(x)2 r(x)1",
            "p: w(x)1 w(y)1 | q: r(y)1 r(x)1",
        ]
        for text in samples:
            h = parse_history(text)
            if check(h, "PRAM").allowed:
                assert check(h, "Hybrid").allowed, text

    def test_legality_still_required(self):
        assert not hybrid("p: r(x)7")


class TestAllStrongIsStrong:
    def test_labeled_sb_rejected(self):
        assert not hybrid("p: w*(x)1 r*(y)0 | q: w*(y)1 r*(x)0")

    def test_labeled_mp_rejected(self):
        assert not hybrid("p: w*(x)1 w*(y)2 | q: r*(y)2 r*(x)0")

    def test_labeled_consistent_outcome_allowed(self):
        assert hybrid("p: w*(x)1 w*(y)2 | q: r*(y)2 r*(x)1")

    def test_sc_contained_in_all_strong_hybrid(self):
        samples = [
            "p: w(x)1 w(y)2 | q: r(y)2 r(x)1",
            "p: w(x)1 | q: r(x)1 w(y)2 | r: r(y)2 r(x)1",
        ]
        for text in samples:
            h = parse_history(text)
            strong = h.relabel(lambda op: True)
            if check(h, "SC").allowed:
                assert check(strong, "Hybrid").allowed, text


class TestMixedStrength:
    def test_strong_flag_protects_weak_data(self):
        # The strong flag hand-off orders the weak data write before the
        # weak data read via po-sync through the flag operations.
        assert not hybrid("p: w(x)1 w*(f)1 | q: r*(f)1 r(x)0")
        assert hybrid("p: w(x)1 w*(f)1 | q: r*(f)1 r(x)1")

    def test_weak_flag_protects_nothing(self):
        assert hybrid("p: w(x)1 w(f)1 | q: r(f)1 r(x)0")

    def test_weak_reads_may_observe_strong_writes_out_of_order(self):
        # q's reads are weak, hence unordered even with each other: q's
        # view may interleave the (agreed-upon) strong write order with
        # its reads arbitrarily.  Hybrid deliberately permits this.
        assert hybrid("p: w*(x)1 w*(x)2 | q: r(x)2 r(x)1")

    def test_strong_reads_see_strong_writes_in_order(self):
        # With *both* sides strong the agreed total order plus po-sync
        # forbids the inversion.
        assert not hybrid("p: w*(x)1 w*(x)2 | q: r*(x)2 r*(x)1")

    def test_weak_writes_may_be_observed_in_any_order(self):
        # p's writes are weak, so even a strong read is free to see them
        # inverted — nothing orders the two writes anywhere.
        assert hybrid("p: w(x)1 w(x)2 | q: r*(x)2 r(x)1")


class TestRegistryIntegration:
    def test_spec_registered(self):
        assert MODELS["Hybrid"].spec is not None
        assert MODELS["Hybrid"].spec.ordering.name == "po-sync"

    def test_generic_and_preferred_agree(self):
        m = MODELS["Hybrid"]
        for text in (
            "p: w(x)1 w(x)2 | q: r(x)2 r(x)1",
            "p: w*(x)1 r*(y)0 | q: w*(y)1 r*(x)0",
        ):
            h = parse_history(text)
            assert m.check(h).allowed == m.check_generic(h).allowed
