"""Tests for the checker registry and the classify entry point."""

import pytest

from repro.checking import MODELS, PAPER_MODELS, check, classify, model_names
from repro.core import CheckerError
from repro.litmus import parse_history


class TestRegistry:
    def test_paper_models_registered(self):
        for name in PAPER_MODELS:
            assert name in MODELS

    def test_model_names_complete(self):
        names = model_names()
        for expected in (
            "SC", "TSO", "PC", "PRAM", "Causal", "Coherence",
            "RC_sc", "RC_pc", "PC-G", "CoherentCausal", "TSO-axiomatic",
        ):
            assert expected in names

    def test_unknown_model_raises(self):
        h = parse_history("p: w(x)1")
        with pytest.raises(CheckerError):
            check(h, "bogus")

    def test_axiomatic_tso_has_no_spec(self):
        m = MODELS["TSO-axiomatic"]
        assert m.spec is None
        with pytest.raises(CheckerError):
            m.check_generic(parse_history("p: w(x)1"))

    def test_allows_shortcut(self, fig1):
        assert MODELS["TSO"].allows(fig1)
        assert not MODELS["SC"].allows(fig1)


class TestClassify:
    def test_default_models(self, fig1):
        verdicts = classify(fig1)
        assert set(verdicts) == set(PAPER_MODELS)
        assert verdicts == {
            "SC": False, "TSO": True, "PC": True, "Causal": True, "PRAM": True,
        }

    def test_custom_model_list(self, fig3):
        verdicts = classify(fig3, ("PRAM", "Coherence"))
        assert verdicts == {"PRAM": True, "Coherence": False}
