"""Release-consistency checker tests, including the Section 5 experiment."""

from repro.checking import check_rc_pc, check_rc_sc
from repro.litmus import parse_history


class TestSection5:
    def test_bakery_violation_allowed_by_rc_pc(self, bakery_violation):
        assert check_rc_pc(bakery_violation).allowed

    def test_bakery_violation_rejected_by_rc_sc(self, bakery_violation):
        assert not check_rc_sc(bakery_violation).allowed

    def test_sequentialized_bakery_allowed_by_both(self):
        # p1 completes its whole protocol before p2 starts: trivially fine.
        h = parse_history(
            "p1: w*(c0)1 r*(n1)0 w*(n0)1 w*(c0)0 r*(c1)0 r*(n1)0 w(cs)1 w*(n0)0 | "
            "p2: w*(c1)1 r*(n0)0 w*(n1)2 w*(c1)0 r*(c0)0 r*(n0)0 w(cs)2 w*(n1)0"
        )
        assert check_rc_sc(h).allowed
        assert check_rc_pc(h).allowed


class TestLabeledDiscipline:
    def test_labeled_sb_rejected_by_rc_sc(self):
        # The SB shape on sync variables: SC labeled ops forbid it.
        h = parse_history("p: w*(x)1 r*(y)0 | q: w*(y)1 r*(x)0")
        assert not check_rc_sc(h).allowed

    def test_labeled_sb_allowed_by_rc_pc(self):
        # PC labeled ops allow the bypass (labeled ppo drops w->r).
        h = parse_history("p: w*(x)1 r*(y)0 | q: w*(y)1 r*(x)0")
        assert check_rc_pc(h).allowed

    def test_labeled_mp_rejected_by_both(self):
        # Labeled MP staleness violates PC of the labeled ops too.
        h = parse_history("p: w*(x)1 w*(y)2 | q: r*(y)2 r*(x)0")
        assert not check_rc_sc(h).allowed
        assert not check_rc_pc(h).allowed

    def test_no_labeled_ops_degenerates_to_coherent_ppo(self):
        # With nothing labeled, both RC variants impose coherence + ppo.
        h = parse_history("p: w(x)1 r(y)0 | q: w(y)1 r(x)0")
        assert check_rc_sc(h).allowed
        assert check_rc_pc(h).allowed

    def test_ordinary_mp_allowed_even_under_rc_sc(self):
        # Unlabeled MP: ordinary operations are free to be stale.
        h = parse_history("p: w(x)1 w(y)2 | q: r(y)2 r(x)0")
        assert check_rc_sc(h).allowed


class TestBracketing:
    def test_acquired_data_must_be_fresh(self):
        # q acquires the flag written by p's release; p's ordinary write
        # of x precedes its release, and q's ordinary read of x follows
        # its acquire — RC forbids q from seeing x stale.
        h = parse_history(
            "p: w(x)1 w*(s)1 | q: r*(s)1 r(x)0"
        )
        assert not check_rc_sc(h).allowed
        assert not check_rc_pc(h).allowed

    def test_acquired_data_fresh_version_allowed(self):
        h = parse_history("p: w(x)1 w*(s)1 | q: r*(s)1 r(x)1")
        assert check_rc_sc(h).allowed
        assert check_rc_pc(h).allowed

    def test_unsynchronized_staleness_allowed(self):
        # Without the acquire, the stale read is ordinary RC behavior.
        h = parse_history("p: w(x)1 w*(s)1 | q: r(x)0")
        assert check_rc_sc(h).allowed

    def test_relaxed_before_acquire_unconstrained(self):
        # An ordinary op *before* any acquire is not bracketed from below.
        h = parse_history("p: w(x)1 w*(s)1 | q: r(x)0 r*(s)1")
        assert check_rc_sc(h).allowed


class TestRCStrength:
    def test_rc_sc_subset_of_rc_pc_on_samples(self):
        samples = [
            "p: w*(x)1 r*(y)0 | q: w*(y)1 r*(x)0",
            "p: w(x)1 w*(s)1 | q: r*(s)1 r(x)1",
            "p: w*(a)1 w*(b)2 | q: r*(b)2 r*(a)1",
            "p: w(x)1 | q: r(x)1",
        ]
        for text in samples:
            h = parse_history(text)
            if check_rc_sc(h).allowed:
                assert check_rc_pc(h).allowed, text
