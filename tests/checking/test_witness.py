"""Tests for independent witness validation."""

import pytest

from repro.checking import MODELS
from repro.checking.witness import validate_witness
from repro.core import CheckerError, View
from repro.lattice import HistorySpace, canonical_key, enumerate_histories
from repro.litmus import CATALOG, parse_history

VALIDATABLE = ("SC", "TSO", "PC", "PRAM", "Causal", "Coherence", "RC_sc", "RC_pc")


class TestAcceptsGoodWitnesses:
    @pytest.mark.parametrize("name", ["fig1-sb", "fig2-pc-not-tso", "fig3-pram-not-tso", "fig4-causal-not-tso"])
    def test_figure_witnesses_validate(self, name):
        h = CATALOG[name].history
        for model in VALIDATABLE:
            m = MODELS[model]
            result = m.check(h)
            if result.allowed and m.spec is not None:
                assert validate_witness(m.spec, h, result.views) == [], (
                    f"{model} witness invalid on {name}"
                )

    def test_sweep_2x2_space(self):
        space = HistorySpace(procs=2, ops_per_proc=2)
        seen = set()
        for h in enumerate_histories(space):
            k = canonical_key(h)
            if k in seen:
                continue
            seen.add(k)
            for model in ("SC", "TSO", "PRAM", "Causal", "Coherence"):
                m = MODELS[model]
                result = m.check(h)
                if result.allowed:
                    problems = validate_witness(m.spec, h, result.views)
                    assert problems == [], f"{model} on:\n{h}\n{problems}"

    def test_rc_witness_on_bakery_history(self, bakery_violation):
        m = MODELS["RC_pc"]
        result = m.check(bakery_violation)
        assert result.allowed
        # The Bakery history has ambiguous 0-reads, so validation refuses.
        with pytest.raises(CheckerError):
            validate_witness(m.spec, bakery_violation, result.views)

    def test_rc_witness_on_clean_history(self):
        h = parse_history("p: w(x)1 w*(s)1 | q: r*(s)1 r(x)1")
        for model in ("RC_sc", "RC_pc"):
            m = MODELS[model]
            result = m.check(h)
            assert result.allowed
            assert validate_witness(m.spec, h, result.views) == []


class TestLabeledAgreement:
    def test_hybrid_witness_validates(self):
        h = parse_history("p: w*(x)1 w(d)2 | q: r*(x)1 r(d)2")
        m = MODELS["Hybrid"]
        result = m.check(h)
        assert result.allowed
        assert validate_witness(m.spec, h, result.views) == []

    def test_disagreeing_labeled_orders_rejected(self):
        h = parse_history("p: w*(x)1 | q: w*(y)2 | r: r(x)1 r(y)2")
        m = MODELS["Hybrid"]
        result = m.check(h)
        assert result.allowed
        views = dict(result.views)
        # Force p and q to order the two labeled writes oppositely.
        w_x, w_y = h.op("p", 0), h.op("q", 0)
        views["p"] = View("p", [w_x, w_y], validate=False)
        views["q"] = View("q", [w_y, w_x], validate=False)
        problems = validate_witness(m.spec, h, views)
        assert any("disagree on labeled order" in p_ for p_ in problems)


class TestRejectsBadWitnesses:
    def test_missing_view(self, fig1):
        m = MODELS["TSO"]
        result = m.check(fig1)
        views = dict(result.views)
        del views["q"]
        problems = validate_witness(m.spec, fig1, views)
        assert any("missing view" in p for p in problems)

    def test_wrong_contents(self, fig1):
        m = MODELS["TSO"]
        result = m.check(fig1)
        views = dict(result.views)
        # Drop the remote write from p's view.
        trimmed = [op for op in views["p"] if op.proc == "p"]
        views["p"] = View("p", trimmed, validate=False)
        problems = validate_witness(m.spec, fig1, views)
        assert any("wrong contents" in p for p in problems)

    def test_illegal_view(self):
        h = parse_history("p: w(x)1 | q: r(x)1")
        m = MODELS["PRAM"]
        result = m.check(h)
        views = dict(result.views)
        # Reverse q's view: the read now precedes the write it observed.
        views["q"] = View("q", list(reversed(list(views["q"]))), validate=False)
        problems = validate_witness(m.spec, h, views)
        assert any("illegal" in p for p in problems)

    def test_broken_mutual_consistency(self, fig1):
        m = MODELS["TSO"]
        result = m.check(fig1)
        views = dict(result.views)
        # Give q a view with the writes swapped (still legal: reads first).
        q_ops = list(views["q"])
        writes = [op for op in q_ops if op.is_write]
        reads = [op for op in q_ops if not op.is_write]
        views["q"] = View("q", reads + list(reversed(writes)), validate=False)
        problems = validate_witness(m.spec, fig1, views)
        assert any("write orders disagree" in p for p in problems)

    def test_broken_ordering(self):
        # PRAM: violate program order of the remote writer in q's view.
        h = parse_history("p: w(x)1 w(y)2 | q: r(y)2 r(x)1")
        m = MODELS["PRAM"]
        result = m.check(h)
        assert result.allowed
        views = dict(result.views)
        w_x, w_y = h.op("p", 0), h.op("p", 1)
        r_y, r_x = h.op("q", 0), h.op("q", 1)
        # Legal but po-violating arrangement: w(y) r(y) w(x) r(x).
        views["q"] = View("q", [w_y, r_y, w_x, r_x], validate=False)
        problems = validate_witness(m.spec, h, views)
        assert any("violates po" in p for p in problems)

    def test_ambiguous_history_refused(self):
        h = parse_history("p: w(x)0 | q: r(x)0")
        m = MODELS["PRAM"]
        result = m.check(h)
        with pytest.raises(CheckerError):
            validate_witness(m.spec, h, result.views)
