"""Tests for the generic solver's machinery: budgets, ambiguity, results."""

import pytest

from repro.checking import SearchBudget, check_with_spec
from repro.core import CheckerError
from repro.litmus import parse_history
from repro.spec import CAUSAL_SPEC, PRAM_SPEC, SC_SPEC, TSO_SPEC, get_spec


class TestResults:
    def test_result_truthiness(self):
        h = parse_history("p: w(x)1")
        res = check_with_spec(SC_SPEC, h)
        assert res and res.allowed and res.model == "SC"

    def test_negative_result_has_reason(self, fig1):
        res = check_with_spec(SC_SPEC, fig1)
        assert not res and res.reason

    def test_str_rendering(self):
        h = parse_history("p: w(x)1")
        out = str(check_with_spec(PRAM_SPEC, h))
        assert "PRAM: allowed" in out and "S_" in out

    def test_unwritten_value_short_circuits(self):
        h = parse_history("p: r(x)9")
        res = check_with_spec(TSO_SPEC, h)
        assert not res.allowed and "never written" in res.reason
        assert res.explored == 0


class TestAmbiguity:
    def test_duplicate_values_still_decided(self):
        # Two writes of the same value: the solver enumerates attributions.
        h = parse_history("p: w(x)1 | q: w(x)1 | r: r(x)1")
        assert check_with_spec(SC_SPEC, h).allowed

    def test_initial_zero_ambiguity_decided(self):
        h = parse_history("p: w(x)0 | q: r(x)0")
        assert check_with_spec(CAUSAL_SPEC, h).allowed

    def test_reads_from_budget_enforced(self):
        # Unsatisfiable (q sees 1 then 0, but w(x)0 precedes w(x)1 in po)
        # with three ambiguous 0-reads: 8 attributions, all failing, so the
        # solver exhausts past the budget of 4 and must raise.
        h = parse_history("p: w(x)0 w(x)1 | q: r(x)1 r(x)0 r(x)0 r(x)0")
        with pytest.raises(CheckerError):
            check_with_spec(SC_SPEC, h, SearchBudget(max_reads_from=4))

    def test_ambiguous_attribution_choice_found(self):
        # Legal only when the read is attributed to the write (value 0
        # written after a 1): the enumeration must find that choice.
        h = parse_history("p: w(x)1 w(x)0 | q: r(x)1 r(x)0")
        assert check_with_spec(SC_SPEC, h).allowed


class TestBudget:
    def test_serialization_budget_enforced(self):
        # TSO-unsatisfiable MP core plus independent writers that blow up
        # the write-order enumeration: every serialization fails, so the
        # cap of 3 must trip before the search exhausts them all.
        h = parse_history(
            "p: w(x)1 w(y)2 | q: r(y)2 r(x)0 | r: w(u)4 | s: w(v)5 | t: w(z)6"
        )
        with pytest.raises(CheckerError):
            check_with_spec(TSO_SPEC, h, SearchBudget(max_serializations=3))

    def test_default_budget_handles_catalog(self, fig2):
        assert check_with_spec(get_spec("PC"), fig2).allowed

    def test_explored_counter_reported(self, fig1):
        res = check_with_spec(TSO_SPEC, fig1)
        assert res.allowed and res.explored >= 1
