"""Tests for the strength-frontier analysis."""

import numpy as np

from repro.analysis import random_history
from repro.analysis.spectrum import (
    KNOWN_EDGES,
    SPECTRUM_MODELS,
    accepting_models,
    strength_frontier,
)
from repro.checking import check
from repro.litmus import CATALOG, parse_history


class TestKnownEdgesSound:
    def test_edges_hold_on_catalog(self):
        for name, t in CATALOG.items():
            h = t.history
            verdicts = {m: check(h, m).allowed for m in SPECTRUM_MODELS}
            for stronger, weaker in KNOWN_EDGES:
                if verdicts[stronger]:
                    assert verdicts[weaker], (
                        f"edge {stronger}->{weaker} violated on {name}"
                    )

    def test_edges_hold_on_random_histories(self):
        rng = np.random.default_rng(53)
        for _ in range(25):
            h = random_history(rng, procs=2, ops_per_proc=3)
            verdicts = {m: check(h, m).allowed for m in SPECTRUM_MODELS}
            for stronger, weaker in KNOWN_EDGES:
                if verdicts[stronger]:
                    assert verdicts[weaker], f"{stronger}->{weaker}:\n{h}"


class TestFrontier:
    def test_sc_history_frontier_is_sc(self):
        h = parse_history("p: w(x)1 | q: r(x)1")
        assert strength_frontier(h) == ("SC",)

    def test_fig1_frontier(self, fig1):
        # TSO and CoherentCausal both allow it and are incomparable
        # (SC, the only common dominator, rejects it).
        assert strength_frontier(fig1) == ("TSO", "CoherentCausal")

    def test_fig3_frontier(self, fig3):
        # Rejected by everything mutual-consistent; causal is the
        # strongest acceptor (PRAM and Slow dominated by it).
        frontier = strength_frontier(fig3)
        assert "Causal" in frontier
        assert "PRAM" not in frontier and "Slow" not in frontier

    def test_fig2_frontier_is_pc(self, fig2):
        frontier = strength_frontier(fig2)
        assert "PC" in frontier
        assert "SC" not in frontier and "TSO" not in frontier

    def test_mp_frontier_is_coherence(self):
        h = parse_history("p: w(x)1 w(y)1 | q: r(y)1 r(x)0")
        assert strength_frontier(h) == ("Coherence",)

    def test_unsatisfiable_history_empty_frontier(self):
        h = parse_history("p: r(x)9")
        assert strength_frontier(h) == ()
        assert accepting_models(h) == set()

    def test_frontier_members_accept(self):
        rng = np.random.default_rng(59)
        for _ in range(15):
            h = random_history(rng, procs=2, ops_per_proc=3)
            accepted = accepting_models(h)
            for m in strength_frontier(h):
                assert m in accepted

    def test_frontier_maximality(self):
        rng = np.random.default_rng(61)
        for _ in range(15):
            h = random_history(rng, procs=2, ops_per_proc=3)
            accepted = accepting_models(h)
            frontier = set(strength_frontier(h))
            for m in frontier:
                dominators = {s for s, w in KNOWN_EDGES if w == m}
                assert not (dominators & accepted), f"{m} dominated on:\n{h}"


class TestEnginePath:
    def test_engine_matches_direct(self):
        from repro.engine import CheckEngine

        engine = CheckEngine()
        rng = np.random.default_rng(71)
        for _ in range(10):
            h = random_history(rng, procs=2, ops_per_proc=3)
            assert accepting_models(h, engine=engine) == accepting_models(h)
            assert strength_frontier(h, engine=engine) == strength_frontier(h)
        assert engine.cache.hit_rate > 0
