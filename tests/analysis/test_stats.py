"""Tests for the reporting helpers."""

from repro.analysis import Timer, format_counts, fraction, verdict_table


class TestTimer:
    def test_measures_nonnegative(self):
        with Timer() as t:
            sum(range(1000))
        assert t.elapsed >= 0


class TestFraction:
    def test_normal(self):
        assert fraction(1, 4) == "1/4 (25.0%)"

    def test_zero_denominator(self):
        assert fraction(0, 0) == "0/0 (0.0%)"


class TestVerdictTable:
    def test_marks_mismatches(self):
        rows = [("t1", {"SC": False}, {"SC": True, "TSO": False})]
        out = verdict_table(rows, ["SC", "TSO"])
        assert "Y!" in out  # expected False, measured True
        assert "t1" in out

    def test_missing_models_dash(self):
        rows = [("t1", {}, {"SC": True})]
        out = verdict_table(rows, ["SC", "TSO"])
        assert "-" in out

    def test_no_mark_when_agreeing(self):
        rows = [("t1", {"SC": True}, {"SC": True})]
        out = verdict_table(rows, ["SC"])
        assert "!" not in out


class TestFormatCounts:
    def test_lines(self):
        out = format_counts({"SC": 3, "TSO": 5}, total=10)
        assert "SC" in out and "3/10" in out and "5/10" in out
