"""Tests for proper-labeling and data-race analysis."""

from repro.analysis import (
    bracketing_violations,
    find_races,
    is_properly_labeled,
    location_discipline_violations,
)
from repro.litmus import parse_history


class TestLocationDiscipline:
    def test_clean_split(self):
        h = parse_history("p: r*(l)0 w(d)1 w*(l)1")
        assert location_discipline_violations(h) == {}

    def test_mixed_location_flagged(self):
        h = parse_history("p: w*(x)1 | q: r(x)1")
        bad = location_discipline_violations(h)
        assert "x" in bad and len(bad["x"]) == 2


class TestBracketing:
    def test_properly_bracketed(self):
        h = parse_history("p: r*(l)0 w(d)1 w*(l)1")
        assert bracketing_violations(h) == []

    def test_missing_acquire(self):
        h = parse_history("p: w(d)1 w*(l)1")
        bad = bracketing_violations(h)
        assert len(bad) == 1 and bad[0].location == "d"

    def test_missing_release(self):
        h = parse_history("p: r*(l)0 w(d)1")
        assert len(bracketing_violations(h)) == 1

    def test_all_labeled_trivially_fine(self):
        h = parse_history("p: w*(x)1 r*(y)0")
        assert bracketing_violations(h) == []


class TestRaces:
    def test_synchronized_access_no_race(self):
        # p writes d under the lock protocol; q acquires p's release
        # before reading d: ordered by happens-before.
        h = parse_history(
            "p: r*(l)0 w(d)1 w*(l)1 | q: r*(l)1 r(d)1 w*(l)2"
        )
        assert find_races(h) == []

    def test_unsynchronized_conflict_is_race(self):
        h = parse_history("p: w(d)1 | q: r(d)0")
        races = find_races(h)
        assert len(races) == 1
        a, b = races[0]
        assert {a.proc, b.proc} == {"p", "q"}

    def test_read_read_never_races(self):
        h = parse_history("p: r(d)0 | q: r(d)0")
        assert find_races(h) == []

    def test_same_proc_never_races(self):
        h = parse_history("p: w(d)1 r(d)1")
        assert find_races(h) == []

    def test_labeled_ops_not_reported(self):
        h = parse_history("p: w*(l)1 | q: r*(l)0")
        assert find_races(h) == []


class TestProperlyLabeled:
    def test_good_program(self):
        h = parse_history(
            "p: r*(l)0 w(d)1 w*(l)1 | q: r*(l)1 r(d)1 w*(l)2"
        )
        assert is_properly_labeled(h)

    def test_racy_program(self):
        h = parse_history("p: w(d)1 | q: r(d)0")
        assert not is_properly_labeled(h)

    def test_bakery_sync_only_execution_is_labeled_clean(self, bakery_violation):
        # The Section 5 history: sync vars labeled, cs ordinary.  The cs
        # writes race (that is the point of the violation) but the
        # location discipline holds.
        assert location_discipline_violations(bakery_violation) == {}
