"""Tests for proper-labeling and data-race analysis."""

from repro.analysis import (
    bracketing_violations,
    find_races,
    is_properly_labeled,
    location_discipline_violations,
)
from repro.litmus import parse_history


class TestLocationDiscipline:
    def test_clean_split(self):
        h = parse_history("p: r*(l)0 w(d)1 w*(l)1")
        assert location_discipline_violations(h) == {}

    def test_mixed_location_flagged(self):
        h = parse_history("p: w*(x)1 | q: r(x)1")
        bad = location_discipline_violations(h)
        assert "x" in bad and len(bad["x"]) == 2


class TestBracketing:
    def test_properly_bracketed(self):
        h = parse_history("p: r*(l)0 w(d)1 w*(l)1")
        assert bracketing_violations(h) == []

    def test_missing_acquire(self):
        h = parse_history("p: w(d)1 w*(l)1")
        bad = bracketing_violations(h)
        assert len(bad) == 1 and bad[0].location == "d"

    def test_missing_release(self):
        h = parse_history("p: r*(l)0 w(d)1")
        assert len(bracketing_violations(h)) == 1

    def test_all_labeled_trivially_fine(self):
        h = parse_history("p: w*(x)1 r*(y)0")
        assert bracketing_violations(h) == []


class TestRaces:
    def test_synchronized_access_no_race(self):
        # p writes d under the lock protocol; q acquires p's release
        # before reading d: ordered by happens-before.
        h = parse_history(
            "p: r*(l)0 w(d)1 w*(l)1 | q: r*(l)1 r(d)1 w*(l)2"
        )
        assert find_races(h) == []

    def test_unsynchronized_conflict_is_race(self):
        h = parse_history("p: w(d)1 | q: r(d)0")
        races = find_races(h)
        assert len(races) == 1
        a, b = races[0]
        assert {a.proc, b.proc} == {"p", "q"}

    def test_read_read_never_races(self):
        h = parse_history("p: r(d)0 | q: r(d)0")
        assert find_races(h) == []

    def test_same_proc_never_races(self):
        h = parse_history("p: w(d)1 r(d)1")
        assert find_races(h) == []

    def test_labeled_ops_not_reported(self):
        h = parse_history("p: w*(l)1 | q: r*(l)0")
        assert find_races(h) == []


class TestProperlyLabeled:
    def test_good_program(self):
        h = parse_history(
            "p: r*(l)0 w(d)1 w*(l)1 | q: r*(l)1 r(d)1 w*(l)2"
        )
        assert is_properly_labeled(h)

    def test_racy_program(self):
        h = parse_history("p: w(d)1 | q: r(d)0")
        assert not is_properly_labeled(h)

    def test_bakery_sync_only_execution_is_labeled_clean(self, bakery_violation):
        # The Section 5 history: sync vars labeled, cs ordinary.  The cs
        # writes race (that is the point of the violation) but the
        # location discipline holds.
        assert location_discipline_violations(bakery_violation) == {}


class TestAlgorithmHistories:
    """find_races / is_properly_labeled on executions of whole algorithms,
    in agreement with the static analyzer where the two overlap."""

    def _history(self, factory, seed=0):
        from repro.machines import SCMachine
        from repro.programs import RandomScheduler, run

        result = run(
            SCMachine(("p0", "p1")), factory(), RandomScheduler(seed),
            max_steps=5000,
        )
        assert result.completed
        return result.history

    def test_bakery_executions_are_race_free(self):
        from repro.programs.figure6 import figure6_program

        for seed in range(4):
            h = self._history(lambda: figure6_program(2), seed)
            assert find_races(h) == []

    def test_peterson_executions_are_race_free(self):
        from repro.programs.algorithm_texts import peterson_text_program

        for seed in range(4):
            assert find_races(self._history(peterson_text_program, seed)) == []

    def test_mislabeled_bakery_races_dynamically(self):
        from repro.programs.algorithm_texts import mislabeled_bakery_program

        h = self._history(mislabeled_bakery_program)
        races = find_races(h)
        assert races
        assert not is_properly_labeled(h)
        bases = {a.location.split("[")[0] for a, _ in races}
        assert bases & {"choosing", "number"}

    def test_dynamic_and_static_verdicts_agree(self):
        # The overlap cases: the static analyzer must flag exactly the
        # algorithms whose executions race dynamically.
        from repro.programs.algorithm_texts import (
            MISLABELED_BAKERY_TEXT,
            PETERSON_TEXT,
            mislabeled_bakery_program,
            peterson_text_program,
        )
        from repro.staticcheck import analyze_program, report_covers_races

        clean = analyze_program(
            PETERSON_TEXT, shared=("turn", "shared"), name="peterson"
        )
        racy = analyze_program(
            MISLABELED_BAKERY_TEXT, shared=("shared",), name="mislabeled"
        )
        assert clean.properly_labeled
        assert not racy.properly_labeled
        assert find_races(self._history(peterson_text_program)) == []
        races = find_races(self._history(mislabeled_bakery_program))
        assert races and report_covers_races(racy, races)
