"""Tests for the random history/program generators."""

import numpy as np
import pytest

from repro.analysis import machine_history, random_history, random_program_ops
from repro.core.errors import HistoryError, ReproError
from repro.machines import SCMachine
from repro.orders import reads_from_candidates
from repro.programs.ops import Read, Write


class TestRandomHistory:
    def test_reproducible(self):
        a = random_history(np.random.default_rng(1))
        b = random_history(np.random.default_rng(1))
        assert a == b

    def test_structure(self):
        h = random_history(
            np.random.default_rng(2), procs=3, ops_per_proc=4, locations=("a", "b", "c")
        )
        assert len(h.procs) == 3
        assert all(len(h.ops_of(p)) == 4 for p in h.procs)
        assert set(h.locations) <= {"a", "b", "c"}

    def test_distinct_write_values(self):
        for seed in range(20):
            h = random_history(np.random.default_rng(seed))
            assert h.has_distinct_write_values()

    def test_reads_always_satisfiable(self):
        for seed in range(20):
            h = random_history(np.random.default_rng(seed))
            for op, cands in reads_from_candidates(h).items():
                assert cands

    def test_p_write_extremes(self):
        all_writes = random_history(np.random.default_rng(3), p_write=1.0)
        assert all(op.is_write for op in all_writes.operations)
        all_reads = random_history(np.random.default_rng(3), p_write=0.0)
        assert all(op.is_read for op in all_reads.operations)
        assert all(op.value == 0 for op in all_reads.operations)


class TestRandomHistoryValidation:
    def test_zero_procs_rejected(self):
        with pytest.raises(HistoryError, match="procs"):
            random_history(np.random.default_rng(0), procs=0)

    def test_zero_ops_rejected(self):
        with pytest.raises(HistoryError, match="ops_per_proc"):
            random_history(np.random.default_rng(0), ops_per_proc=0)

    def test_empty_locations_rejected(self):
        with pytest.raises(HistoryError, match="location"):
            random_history(np.random.default_rng(0), locations=())

    @pytest.mark.parametrize("p_write", [-0.1, 1.5])
    def test_p_write_out_of_range_rejected(self, p_write):
        with pytest.raises(HistoryError, match="p_write"):
            random_history(np.random.default_rng(0), p_write=p_write)

    def test_errors_are_repro_errors(self):
        # Callers catching the framework's base class see these too.
        with pytest.raises(ReproError):
            random_history(np.random.default_rng(0), procs=-1)

    def test_messages_name_the_parameter_and_value(self):
        # Every rejection names the offending parameter AND the value it
        # received, so a failing sweep config is diagnosable from the
        # message alone.
        cases = [
            (dict(procs=0), r"procs must be >= 1, got 0"),
            (dict(ops_per_proc=-2), r"ops_per_proc must be >= 1, got -2"),
            (dict(locations=()), r"locations must be non-empty, got \(\)"),
            (dict(p_write=1.5), r"p_write must lie in \[0, 1\], got 1\.5"),
        ]
        for kwargs, pattern in cases:
            with pytest.raises(HistoryError, match=pattern):
                random_history(np.random.default_rng(0), **kwargs)


class TestExtraReadValues:
    def test_none_is_default_behaviour(self):
        a = random_history(np.random.default_rng(11))
        b = random_history(np.random.default_rng(11), values=None)
        assert a == b

    def test_reads_can_observe_unwritten_values(self):
        # The extra pool carries no candidate-writer guarantee: it exists
        # to produce impossible-read histories for the fuzzer.
        seen_unwritten = False
        for seed in range(30):
            h = random_history(
                np.random.default_rng(seed), p_write=0.3, values=(97, 98, 99)
            )
            written = {op.value for op in h.operations if op.is_write}
            for op in h.operations:
                if op.is_read and op.value in (97, 98, 99):
                    seen_unwritten = op.value not in written or seen_unwritten
        assert seen_unwritten

    def test_empty_values_rejected(self):
        with pytest.raises(HistoryError, match=r"values must be non-empty.*\(\)"):
            random_history(np.random.default_rng(0), values=())


class TestRandomProgram:
    def test_ops_count_and_kinds(self):
        ops = random_program_ops(np.random.default_rng(4), ops=6)
        assert len(ops) == 6
        assert all(isinstance(op, (Read, Write)) for op in ops)

    def test_value_base_respected(self):
        ops = random_program_ops(np.random.default_rng(5), ops=8, p_write=1.0, value_base=100)
        values = [op.value for op in ops]
        assert values == list(range(100, 108))

    def test_degenerate_params_rejected(self):
        cases = [
            (dict(ops=0), r"random_program_ops: ops must be >= 1, got 0"),
            (
                dict(locations=()),
                r"random_program_ops: locations must be non-empty, got \(\)",
            ),
            (
                dict(p_write=-0.5),
                r"random_program_ops: p_write must lie in \[0, 1\], got -0\.5",
            ),
        ]
        for kwargs, pattern in cases:
            with pytest.raises(HistoryError, match=pattern):
                random_program_ops(np.random.default_rng(0), **kwargs)


class TestMachineHistory:
    def test_produces_complete_trace(self):
        rng = np.random.default_rng(6)
        m = SCMachine(("p0", "p1"))
        h = machine_history(m, rng, ops_per_proc=3)
        assert all(len(h.ops_of(p)) == 3 for p in h.procs)

    def test_distinct_values_across_threads(self):
        rng = np.random.default_rng(7)
        m = SCMachine(("p0", "p1"))
        h = machine_history(m, rng, ops_per_proc=4, p_write=1.0)
        assert h.has_distinct_write_values()

    def test_empty_procs_rejected(self):
        with pytest.raises(HistoryError, match=r"machine_history: procs must be non-empty"):
            machine_history(SCMachine(("p0",)), np.random.default_rng(0), procs=())

    def test_zero_ops_rejected(self):
        with pytest.raises(
            HistoryError, match=r"machine_history: ops_per_proc must be >= 1, got 0"
        ):
            machine_history(SCMachine(("p0",)), np.random.default_rng(0), ops_per_proc=0)
