"""Tests for streaming legality and trace statistics."""

from repro.analysis.trace import streaming_legality, trace_stats
from repro.core.operation import read, write
from repro.litmus import parse_history


class TestStreamingLegality:
    def test_legal_trace(self):
        ops = [write("p", 0, "x", 1), read("q", 0, "x", 1)]
        assert streaming_legality(ops) is None

    def test_violation_position(self):
        ops = [write("p", 0, "x", 1), read("q", 0, "x", 2)]
        violation = streaming_legality(ops)
        assert violation is not None and violation[0] == 1

    def test_lazy_consumption(self):
        consumed = []

        def gen():
            for i in range(10_000):
                consumed.append(i)
                # Break legality at position 3.
                yield read("p", i, "x", 9 if i == 3 else 0)

        violation = streaming_legality(gen())
        assert violation is not None and violation[0] == 3
        assert len(consumed) == 4  # stopped at the violation, not the end

    def test_large_trace_linear(self):
        def gen():
            for i in range(50_000):
                yield write("p", i * 2, "x", i + 1)
                yield read("p", i * 2 + 1, "x", i + 1)

        assert streaming_legality(gen()) is None

    def test_custom_initial(self):
        assert streaming_legality([read("p", 0, "x", 5)], initial=5) is None


class TestTraceStats:
    def test_counts(self):
        h = parse_history("p: w(x)1 r(y)0 u(l)0->1 | q: w*(y)2")
        stats = trace_stats(h)
        assert stats.operations == 4
        assert stats.reads == 1 and stats.writes == 2 and stats.rmws == 1
        assert stats.labeled == 1
        assert stats.processors == 2 and stats.locations == 3

    def test_shared_locations(self):
        h = parse_history("p: w(x)1 w(z)3 | q: r(x)1 w(y)2")
        assert trace_stats(h).shared_locations == 1  # only x is shared

    def test_reads_from_composition(self):
        h = parse_history(
            "p: w(x)1 r(x)1 r(y)0 | q: r(x)1"
        )
        stats = trace_stats(h)
        assert stats.reads_of_initial == 1  # r(y)0
        assert stats.reads_local == 1       # p reading its own x
        assert stats.reads_remote == 1      # q reading p's x
        assert stats.reads_ambiguous == 0

    def test_ambiguous_reads_counted(self):
        h = parse_history("p: w(x)0 | q: r(x)0")
        assert trace_stats(h).reads_ambiguous == 1

    def test_communication_ratio(self):
        h = parse_history("p: w(x)1 | q: r(x)1 r(x)1")
        assert trace_stats(h).communication_ratio == 1.0
        lonely = parse_history("p: w(x)1 r(x)1")
        assert trace_stats(lonely).communication_ratio == 0.0

    def test_rmw_read_half_in_ratio(self):
        h = parse_history("p: w(l)1 | q: u(l)1->2")
        stats = trace_stats(h)
        assert stats.rmws == 1 and stats.reads_remote == 1
        assert stats.communication_ratio == 1.0
