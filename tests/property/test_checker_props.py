"""Property-based tests over the checkers (hypothesis).

Invariants: the Figure 5 containments hold on arbitrary generated
histories; witness views really witness; fast paths agree with the
generic solver; verdicts are invariant under processor renaming.
"""

from hypothesis import HealthCheck, given, settings

from repro.checking import MODELS, check
from repro.core.history import ProcessorHistory, SystemHistory
from repro.core.operation import Operation
from repro.core.view import check_view_contents, is_legal_sequence
from repro.lattice import FIGURE5_EDGES

from tests.property.test_history_strategies import history_strategy

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(history_strategy())
@RELAXED
def test_figure5_containments(h):
    verdicts = {}
    for stronger, weaker in FIGURE5_EDGES:
        for name in (stronger, weaker):
            if name not in verdicts:
                verdicts[name] = check(h, name).allowed
        if verdicts[stronger]:
            assert verdicts[weaker], f"{stronger} ⊄ {weaker}:\n{h}"


@given(history_strategy())
@RELAXED
def test_witness_views_are_valid(h):
    for model in ("SC", "TSO", "PRAM", "Causal"):
        res = MODELS[model].check(h)
        if res.allowed:
            for proc, view in res.views.items():
                assert is_legal_sequence(list(view))
                check_view_contents(list(view), h, proc)


@given(history_strategy(max_procs=2))
@RELAXED
def test_fast_paths_agree_with_generic(h):
    for model in ("SC", "TSO", "PRAM"):
        m = MODELS[model]
        assert m.check(h).allowed == m.check_generic(h).allowed, f"{model}:\n{h}"


@given(history_strategy())
@RELAXED
def test_verdicts_invariant_under_proc_renaming(h):
    renamed = SystemHistory(
        ProcessorHistory(
            f"z{proc}",
            [
                Operation(
                    proc=f"z{proc}",
                    index=op.index,
                    kind=op.kind,
                    location=op.location,
                    value=op.value,
                    read_value=op.read_value,
                    labeled=op.labeled,
                )
                for op in h.ops_of(proc)
            ],
        )
        for proc in h.procs
    )
    for model in ("SC", "TSO", "PRAM", "Causal"):
        assert check(h, model).allowed == check(renamed, model).allowed


@given(history_strategy(max_procs=2, max_ops=2))
@RELAXED
def test_single_processor_histories_decided_by_legality(h):
    # For one processor, every model collapses: allowed iff the program
    # order itself is a legal sequence.
    if len(h.procs) != 1:
        return
    legal = is_legal_sequence(list(h.ops_of(h.procs[0])))
    for model in ("SC", "TSO", "PC", "PRAM", "Causal", "Coherence"):
        assert check(h, model).allowed == legal, f"{model}:\n{h}"


@given(history_strategy(max_procs=2))
@RELAXED
def test_slow_memory_bounds_the_lattice(h):
    # Slow memory contains every unlabeled model (and unlabeled hybrid
    # contains slow): the measured bottom of the extended lattice.
    slow = check(h, "Slow").allowed
    for model in ("SC", "TSO", "PC", "PRAM", "Causal", "Coherence"):
        if check(h, model).allowed:
            assert slow, f"{model} ⊄ Slow:\n{h}"
    if slow:
        assert check(h, "Hybrid").allowed, f"Slow ⊄ Hybrid:\n{h}"


@given(history_strategy(labeled=True, max_procs=2))
@RELAXED
def test_labeled_hybrid_between_sc_and_everything(h):
    # Fully-labeled histories: SC implies hybrid (the SC order is the
    # agreed strong order).
    strong = h.relabel(lambda op: True)
    if check(strong, "SC").allowed:
        assert check(strong, "Hybrid").allowed, f"SC ⊄ Hybrid (all-strong):\n{h}"


@given(history_strategy(labeled=True, max_procs=2))
@RELAXED
def test_rc_sc_contained_in_rc_pc(h):
    if check(h, "RC_sc").allowed:
        assert check(h, "RC_pc").allowed, f"RC_sc ⊄ RC_pc:\n{h}"


@given(history_strategy(labeled=True, max_procs=2))
@RELAXED
def test_sc_contained_in_rc_sc_under_location_discipline(h):
    # The RC containment holds only under the paper's Section 5
    # assumption: synchronization locations are touched only by labeled
    # operations (otherwise the labeled sub-history is not self-contained
    # and RC_sc's labeled-SC requirement is vacuously unsatisfiable).
    from repro.analysis import location_discipline_violations

    if location_discipline_violations(h):
        return
    if check(h, "SC").allowed:
        assert check(h, "RC_sc").allowed, f"SC ⊄ RC_sc:\n{h}"
