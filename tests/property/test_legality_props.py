"""Property-based tests for legality and the extension kernel."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.checking import find_legal_extension, iter_legal_extensions
from repro.core.view import first_legality_violation, is_legal_sequence
from repro.orders import po_relation
from repro.orders.relation import Relation

from tests.property.test_history_strategies import history_strategy

RELAXED = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@given(history_strategy(max_procs=2, max_ops=3))
@RELAXED
def test_found_extensions_are_legal_linear_extensions(h):
    rel = po_relation(h)
    out = find_legal_extension(h.operations, rel)
    if out is not None:
        assert is_legal_sequence(out)
        assert rel.is_linear_extension(out)
        assert sorted(op.uid for op in out) == sorted(op.uid for op in h.operations)


@given(history_strategy(max_procs=2, max_ops=2))
@RELAXED
def test_iter_agrees_with_find(h):
    rel = po_relation(h)
    found = find_legal_extension(h.operations, rel)
    any_iter = next(iter(iter_legal_extensions(h.operations, rel, limit=1)), None)
    assert (found is None) == (any_iter is None)


@given(history_strategy(max_procs=2, max_ops=2))
@RELAXED
def test_every_enumerated_extension_is_distinct_and_valid(h):
    rel = po_relation(h)
    seen = set()
    for seq in iter_legal_extensions(h.operations, rel, limit=50):
        key = tuple(op.uid for op in seq)
        assert key not in seen
        seen.add(key)
        assert is_legal_sequence(seq)


@given(history_strategy(max_procs=2, max_ops=3))
@RELAXED
def test_adding_constraints_never_creates_solutions(h):
    unconstrained = find_legal_extension(h.operations, Relation(h.operations))
    constrained = find_legal_extension(h.operations, po_relation(h))
    if unconstrained is None:
        assert constrained is None


@given(st.lists(st.integers(0, 3), min_size=1, max_size=8))
def test_legality_violation_position_is_first(prefix_values):
    """The reported violation is the earliest one."""
    from repro.core.operation import read

    ops = [read("p", i, "x", v) for i, v in enumerate(prefix_values)]
    violation = first_legality_violation(ops)
    if violation is None:
        assert all(v == 0 for v in prefix_values)
    else:
        pos, _, _ = violation
        assert all(v == 0 for v in prefix_values[:pos])
        assert prefix_values[pos] != 0
