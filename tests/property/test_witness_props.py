"""Property test: every positive verdict's witness validates independently."""

from hypothesis import HealthCheck, given, settings

from repro.checking import MODELS
from repro.checking.witness import validate_witness
from repro.orders.writes_before import unambiguous_reads_from

from tests.property.test_history_strategies import history_strategy

RELAXED = settings(
    max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

VALIDATABLE = ("SC", "TSO", "PC", "PRAM", "Causal", "Coherence", "Slow", "Hybrid")


@given(history_strategy(max_procs=2, max_ops=3))
@RELAXED
def test_witnesses_validate(h):
    if unambiguous_reads_from(h) is None:
        return  # validation requires the litmus discipline
    for model in VALIDATABLE:
        m = MODELS[model]
        result = m.check(h)
        if result.allowed:
            problems = validate_witness(m.spec, h, result.views)
            assert problems == [], f"{model} invalid witness:\n{h}\n{problems}"


@given(history_strategy(max_procs=3, max_ops=2))
@RELAXED
def test_witnesses_validate_three_procs(h):
    if unambiguous_reads_from(h) is None:
        return
    for model in ("TSO", "PRAM", "Coherence"):
        m = MODELS[model]
        result = m.check(h)
        if result.allowed:
            assert validate_witness(m.spec, h, result.views) == [], f"{model}:\n{h}"
