"""Property-based backend parity (hypothesis).

The backend contract as properties: for *any* mask plane — not just the
ones the search happens to produce — the numpy backend's transitive
closure, acyclicity verdict, and fused gate equal the pure-Python
reference's, at every batch size; and for any random history, the full
``check_with_spec`` result (verdict, witness views, reason, exploration
count) is identical under both backends for every spec-backed model.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.checking.models import MODELS, model_names
from repro.core.serialization import check_result_to_dict
from repro.kernel.backend import get_backend, use_backend
from repro.kernel.constraints import close_masks, masks_acyclic
from repro.kernel.search import check_with_spec

from tests.property.test_history_strategies import history_strategy

RELAXED = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

SPEC_MODELS = tuple(n for n in model_names() if MODELS[n].spec is not None)


@st.composite
def mask_plane(draw, max_n=12):
    """A random predecessor-mask plane: ``(masks, n)``, bits < n only.

    Self-loops and cycles are deliberately *allowed* — the gate's whole
    job is to reject them, so the strategy must produce them.
    """
    n = draw(st.integers(0, max_n))
    masks = [draw(st.integers(0, (1 << n) - 1)) if n else 0 for _ in range(n)]
    return masks, n


@st.composite
def mask_batch(draw, max_rows=6):
    n = draw(st.integers(0, 10))
    rows = draw(st.integers(0, max_rows))
    return [
        [draw(st.integers(0, (1 << n) - 1)) if n else 0 for _ in range(n)]
        for _ in range(rows)
    ], n


@given(mask_plane())
@RELAXED
def test_closure_parity(plane):
    masks, n = plane
    assert get_backend("numpy").close(masks, n) == close_masks(masks)


@given(mask_plane())
@RELAXED
def test_acyclicity_parity(plane):
    masks, n = plane
    assert get_backend("numpy").acyclic(masks, n) == masks_acyclic(masks, n)


@given(mask_plane())
@RELAXED
def test_gate_consistency(plane):
    # The fused gate must agree with its two components on both backends.
    masks, n = plane
    for name in ("python", "numpy"):
        backend = get_backend(name)
        gated = backend.gate(masks, n)
        if masks_acyclic(masks, n):
            assert gated == close_masks(masks)
        else:
            assert gated is None


@given(mask_batch())
@RELAXED
def test_batch_parity(batch):
    rows, n = batch
    py = get_backend("python")
    nb = get_backend("numpy")
    assert nb.gate_batch(rows, n) == py.gate_batch(rows, n)
    assert nb.close_batch(rows, n) == py.close_batch(rows, n)
    assert nb.acyclic_batch(rows, n) == py.acyclic_batch(rows, n)


@given(history_strategy(), st.booleans())
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_check_results_identical_across_backends(history, prepass):
    for name in SPEC_MODELS:
        spec = MODELS[name].spec
        with use_backend("python"):
            ref = check_result_to_dict(
                check_with_spec(spec, history, prepass=prepass)
            )
        with use_backend("numpy"):
            got = check_result_to_dict(
                check_with_spec(spec, history, prepass=prepass)
            )
        assert ref == got, f"backend divergence under {name}"
