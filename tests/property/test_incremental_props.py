"""Property-based tests for incremental checking (hypothesis).

The streaming contract as a property: for a random history, replaying it
op by op through an :class:`~repro.kernel.incremental.IncrementalCheck`
gives — after every append — exactly the verdict a fresh one-shot
:func:`~repro.kernel.search.check_with_spec` gives on the same prefix,
across every spec-backed catalog model, with the prepass both off and on.
A second property drives the whole :class:`~repro.engine.EngineSession`
coordinator (shared stream + relation memo) to the same bar, and a third
pins stream bookkeeping (re-indexing, plane-reuse flags).
"""

from itertools import zip_longest

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.checking.models import MODELS, model_names
from repro.engine import EngineSession
from repro.kernel.incremental import HistoryStream, IncrementalCheck
from repro.kernel.search import check_with_spec

from tests.property.test_history_strategies import history_strategy

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

SPEC_MODELS = tuple(n for n in model_names() if MODELS[n].spec is not None)


def interleaved(history):
    per_proc = {}
    for op in history.operations:
        per_proc.setdefault(op.proc, []).append(op)
    return [
        op
        for round_ops in zip_longest(*per_proc.values())
        for op in round_ops
        if op is not None
    ]


def fingerprint(result):
    return (
        result.allowed,
        result.explored,
        result.reason,
        result.counterexample.kind if result.counterexample else None,
        result.views,
    )


@given(history_strategy(), st.booleans())
@RELAXED
def test_append_equals_fresh_check_of_extended_prefix(h, prepass):
    """append(op) ≡ a fresh full check of prefix+op, at every prefix."""
    for name in SPEC_MODELS:
        spec = MODELS[name].spec
        stream = HistoryStream()
        inc = IncrementalCheck(spec, stream, prepass=prepass)
        inc.check()
        for op in interleaved(h):
            placed, reused = stream.append(op)
            got = inc.on_appended((placed,), reused)
            want = check_with_spec(spec, stream.history, prepass=prepass)
            assert fingerprint(got) == fingerprint(want), (
                f"{name} prepass={prepass} at "
                f"{len(stream.history.operations)} ops:\n{stream.history}"
            )


@given(history_strategy(labeled=True, max_procs=2))
@RELAXED
def test_labeled_streams_match_fresh_checks(h):
    """Labeled ops (RC disciplines) stream without failure memory."""
    labeled = [
        n
        for n in SPEC_MODELS
        if MODELS[n].spec.labeled_discipline is not None
    ]
    for name in labeled:
        spec = MODELS[name].spec
        inc = IncrementalCheck(spec)
        for op in interleaved(h):
            got = inc.append(op)
            want = check_with_spec(spec, inc.history)
            assert fingerprint(got) == fingerprint(want), f"{name}\n{h}"


@given(history_strategy(max_procs=2))
@RELAXED
def test_engine_session_matches_one_shot(h):
    """The multi-model coordinator preserves per-model byte-parity."""
    session = EngineSession(("SC", "PRAM", "Causal"))
    for op in interleaved(h):
        results = session.append(op)
        for name, got in results.items():
            want = check_with_spec(MODELS[name].spec, session.history)
            assert fingerprint(got) == fingerprint(want), f"{name}\n{h}"


@given(history_strategy())
@RELAXED
def test_stream_rebuilds_exactly_the_input_history(h):
    """Appending a history op by op reconstructs it, indices and all."""
    stream = HistoryStream()
    for op in interleaved(h):
        stream.append(op)
    assert set(stream.history.procs) == set(h.procs)
    for proc in h.procs:
        assert list(stream.history.ops_of(proc)) == list(h.ops_of(proc))
