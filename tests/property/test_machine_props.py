"""Property-based machine tests: random programs, random schedules,
verdicts always allowed by the machine's model."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.checking import check
from repro.litmus import format_history, parse_history
from repro.machines import (
    CausalMachine,
    CoherentMachine,
    PCMachine,
    PRAMMachine,
    SCMachine,
    TSOMachine,
)
from repro.programs import RandomScheduler, Read, Write, run

RELAXED = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

MACHINES = {
    "SC": (SCMachine, "SC"),
    "TSO": (TSOMachine, "TSO-axiomatic"),
    "PC": (PCMachine, "PC"),
    "PRAM": (PRAMMachine, "PRAM"),
    "Causal": (CausalMachine, "Causal"),
    "Coherent": (CoherentMachine, "Coherence"),
}


@st.composite
def program_and_seed(draw):
    """Two straight-line threads with globally distinct write values."""
    threads = {}
    value = 1
    for proc in ("p", "q"):
        n = draw(st.integers(1, 4))
        ops = []
        for _ in range(n):
            loc = draw(st.sampled_from(("x", "y")))
            if draw(st.booleans()):
                ops.append(Write(loc, value))
                value += 1
            else:
                ops.append(Read(loc))
        threads[proc] = ops
    return threads, draw(st.integers(0, 2**30))


def as_factories(threads):
    def factory(ops):
        def gen():
            for op in ops:
                yield op
        return gen

    return {proc: factory(ops) for proc, ops in threads.items()}


@given(program_and_seed())
@RELAXED
def test_machine_traces_satisfy_models(data):
    threads, seed = data
    for name, (cls, model) in MACHINES.items():
        machine = cls(("p", "q"))
        run(machine, as_factories(threads), RandomScheduler(seed), max_steps=1000)
        h = machine.history()
        assert check(h, model).allowed, f"{name} trace not {model}:\n{h}"


@given(program_and_seed())
@RELAXED
def test_histories_roundtrip_through_dsl(data):
    threads, seed = data
    machine = SCMachine(("p", "q"))
    run(machine, as_factories(threads), RandomScheduler(seed), max_steps=1000)
    h = machine.history()
    assert parse_history(format_history(h)) == h


@given(program_and_seed())
@RELAXED
def test_machines_record_program_shape(data):
    threads, seed = data
    machine = PRAMMachine(("p", "q"))
    run(machine, as_factories(threads), RandomScheduler(seed), max_steps=1000)
    h = machine.history()
    for proc, ops in threads.items():
        recorded = h.ops_of(proc)
        assert len(recorded) == len(ops)
        for req, op in zip(ops, recorded):
            assert op.location == req.location
            if isinstance(req, Write):
                assert op.is_write and op.value == req.value
            else:
                assert op.is_pure_read
