"""Property-based tests for the relation algebra (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.orders.relation import Relation

items = st.integers(min_value=0, max_value=11)
pairs = st.lists(st.tuples(items, items).filter(lambda p: p[0] != p[1]), max_size=20)


def make(pair_list):
    return Relation(range(12), pair_list)


@given(pairs)
def test_closure_is_idempotent(pair_list):
    r = make(pair_list).transitive_closure()
    again = r.transitive_closure()
    assert set(r.pairs()) == set(again.pairs())


@given(pairs)
def test_closure_contains_original(pair_list):
    r = make(pair_list)
    closed = r.transitive_closure()
    assert set(r.pairs()) <= set(closed.pairs())


@given(pairs)
def test_closure_is_transitive(pair_list):
    closed = make(pair_list).transitive_closure()
    ps = set(closed.pairs())
    for a, b in ps:
        for c, d in ps:
            if b == c:
                assert (a, d) in ps


@given(pairs, pairs)
def test_union_commutative_on_pairs(p1, p2):
    a = make(p1).union(make(p2))
    b = make(p2).union(make(p1))
    assert set(a.pairs()) == set(b.pairs())


@given(pairs)
def test_numpy_and_worklist_closures_agree(pair_list):
    # Force both code paths on identical input: a small relation uses the
    # worklist; embed the same pairs in a larger universe for numpy.
    small = Relation(range(6), [(a % 6, b % 6) for a, b in pair_list if a % 6 != b % 6])
    big = Relation(range(12), [(a % 6, b % 6) for a, b in pair_list if a % 6 != b % 6])
    sc = set(small.transitive_closure().pairs())
    bc = set(big.transitive_closure().pairs())
    assert sc == {(a, b) for a, b in bc if a < 6 and b < 6}


@given(pairs)
@settings(max_examples=50)
def test_topological_sort_is_linear_extension_when_acyclic(pair_list):
    r = make(pair_list)
    if r.is_acyclic():
        order = r.topological_sort()
        assert r.is_linear_extension(order)


@given(pairs)
@settings(max_examples=50)
def test_cycle_detection_consistent_with_sort(pair_list):
    r = make(pair_list)
    cycle = r.find_cycle()
    if cycle is None:
        r.topological_sort()  # must not raise
    else:
        # The returned cycle must be a real path through the relation.
        assert cycle[0] == cycle[-1] and len(cycle) >= 2
        for a, b in zip(cycle, cycle[1:]):
            assert (a, b) in r


@given(pairs)
@settings(max_examples=30)
def test_restrict_preserves_internal_pairs(pair_list):
    r = make(pair_list)
    keep = set(range(6))
    restricted = r.restrict(lambda x: x in keep)
    expected = {(a, b) for a, b in r.pairs() if a in keep and b in keep}
    assert set(restricted.pairs()) == expected
