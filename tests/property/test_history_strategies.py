"""Shared hypothesis strategies for generating small histories."""

from hypothesis import strategies as st

from repro.core.history import HistoryBuilder

__all__ = ["history_strategy"]

LOCATIONS = ("x", "y")


@st.composite
def history_strategy(draw, max_procs=3, max_ops=3, labeled=False):
    """Random small histories with distinct write values and satisfiable reads.

    Mirrors the enumeration discipline: write values are globally unique
    by slot; reads draw from {0} ∪ values-written-to-their-location.
    """
    n_procs = draw(st.integers(1, max_procs))
    shapes = []
    written = {loc: [] for loc in LOCATIONS}
    slot = 0
    for _ in range(n_procs):
        n_ops = draw(st.integers(1, max_ops))
        row = []
        for _ in range(n_ops):
            loc = draw(st.sampled_from(LOCATIONS))
            is_write = draw(st.booleans())
            is_labeled = labeled and draw(st.booleans())
            if is_write:
                written[loc].append(slot + 1)
                row.append(("w", loc, slot + 1, is_labeled))
            else:
                row.append(("r", loc, None, is_labeled))
            slot += 1
        shapes.append(row)
    builder = HistoryBuilder()
    for pi, row in enumerate(shapes):
        builder.proc(f"p{pi}")
        for kind, loc, value, is_labeled in row:
            if kind == "w":
                builder.write(loc, value, labeled=is_labeled)
            else:
                options = [0] + written[loc]
                builder.read(loc, draw(st.sampled_from(options)), labeled=is_labeled)
    return builder.build()


def test_strategy_builds_valid_histories():
    # A plain pytest smoke test so this module carries its own check.
    from hypothesis import given

    @given(history_strategy())
    def inner(h):
        assert h.has_distinct_write_values()
        assert len(h.operations) >= 1

    inner()
