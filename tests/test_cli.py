"""Tests for the command-line interface (invoked in-process)."""

import pytest

from repro.cli import main


class TestCheck:
    def test_allowed_exits_zero(self, capsys):
        rc = main(["check", "p: w(x)1 r(y)0 | q: w(y)1 r(x)0", "--model", "TSO"])
        assert rc == 0
        assert "TSO: allowed" in capsys.readouterr().out

    def test_rejected_exits_one(self, capsys):
        rc = main(["check", "p: w(x)1 r(y)0 | q: w(y)1 r(x)0", "--model", "SC"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "NOT allowed" in out and "reason:" in out

    def test_views_flag(self, capsys):
        rc = main(["check", "p: w(x)1 | q: r(x)1", "--model", "PRAM", "--views"])
        assert rc == 0
        assert "S_{" in capsys.readouterr().out

    def test_parse_error_exits_two(self, capsys):
        rc = main(["check", "garbage input"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_model_exits_two(self, capsys):
        rc = main(["check", "p: w(x)1", "--model", "Nonsense"])
        assert rc == 2


class TestClassify:
    def test_lists_every_model(self, capsys):
        rc = main(["classify", "p: w(x)1 r(y)0 | q: w(y)1 r(x)0"])
        assert rc == 0
        out = capsys.readouterr().out
        for model in ("SC", "TSO", "PC", "PRAM", "Causal", "Hybrid"):
            assert model in out


class TestCatalog:
    def test_sweep(self, capsys):
        rc = main(["catalog"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fig1-sb" in out and "fig4-causal-not-tso" in out

    def test_single_entry_shows_verdicts(self, capsys):
        rc = main(["catalog", "--name", "fig1-sb"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "DIVERGES" not in out

    def test_unknown_entry(self, capsys):
        rc = main(["catalog", "--name", "nope"])
        assert rc == 2


class TestLattice:
    def test_default_run(self, capsys):
        rc = main(["lattice"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 5 violations: 0" in out and "strongest" in out

    def test_dot_output(self, capsys):
        rc = main(["lattice", "--dot"])
        assert rc == 0
        assert "digraph" in capsys.readouterr().out

    def test_jobs_flag_same_counts(self, capsys):
        rc = main(["lattice", "--jobs", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "210 canonical histories" in out
        assert "Figure 5 violations: 0" in out


class TestVersion:
    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out


class TestSweep:
    def test_catalog_sweep(self, capsys):
        rc = main(["sweep", "--source", "catalog", "--models", "SC,TSO,PC"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "histories: 17 checked" in out
        assert "cache hit rate" in out
        assert "allowed counts" in out

    def test_sweep_writes_store(self, capsys, tmp_path):
        out_file = tmp_path / "results.jsonl"
        rc = main(
            ["sweep", "--models", "SC", "--jobs", "2", "--out", str(out_file)]
        )
        assert rc == 0
        lines = out_file.read_text().splitlines()
        assert any('"type":"result"' in line for line in lines)
        assert any('"type":"summary"' in line for line in lines)

    def test_sweep_resume_skips(self, capsys, tmp_path):
        out_file = tmp_path / "results.jsonl"
        assert main(["sweep", "--models", "SC", "--out", str(out_file)]) == 0
        capsys.readouterr()
        rc = main(
            ["sweep", "--models", "SC", "--out", str(out_file), "--resume"]
        )
        assert rc == 0
        assert "17 skipped" in capsys.readouterr().out

    def test_resume_without_out_rejected(self, capsys):
        rc = main(["sweep", "--resume"])
        assert rc == 2
        assert "--out" in capsys.readouterr().err

    def test_random_source(self, capsys):
        rc = main(
            ["sweep", "--source", "random", "--models", "SC", "--count", "5",
             "--seed", "1"]
        )
        assert rc == 0
        assert "histories: 5 checked" in capsys.readouterr().out

    def test_unknown_model_exits_two(self, capsys):
        rc = main(["sweep", "--models", "SC,Bogus"])
        assert rc == 2
        assert "unknown model" in capsys.readouterr().err

    def test_bad_p_write_exits_two(self, capsys):
        rc = main(["sweep", "--source", "random", "--p-write", "2.0"])
        assert rc == 2
        assert "p_write" in capsys.readouterr().err


class TestBakery:
    def test_rc_sc_random_runs_clean(self, capsys):
        rc = main(["bakery", "--machine", "rc_sc", "--runs", "10"])
        assert rc == 0
        assert "0/10" in capsys.readouterr().out

    def test_rc_pc_adversarial_violates(self, capsys):
        rc = main(["bakery", "--machine", "rc_pc", "--adversarial"])
        assert rc == 0
        assert "VIOLATED" in capsys.readouterr().out

    def test_sc_adversarial_holds(self, capsys):
        rc = main(["bakery", "--machine", "sc", "--adversarial"])
        assert rc == 0
        assert "held" in capsys.readouterr().out


class TestSpectrum:
    def test_frontier_reported(self, capsys):
        rc = main(["spectrum", "p: w(x)1 r(y)0 | q: w(y)1 r(x)0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "strength frontier" in out and "TSO" in out

    def test_unsatisfiable_history(self, capsys):
        rc = main(["spectrum", "p: r(x)9"])
        assert rc == 1
        assert "no model allows" in capsys.readouterr().out


class TestModels:
    def test_lists_models(self, capsys):
        rc = main(["models"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "SC" in out and "TSO-axiomatic" in out
