"""Tests for the command-line interface (invoked in-process)."""

import pytest

from repro.cli import main


class TestCheck:
    def test_allowed_exits_zero(self, capsys):
        rc = main(["check", "p: w(x)1 r(y)0 | q: w(y)1 r(x)0", "--model", "TSO"])
        assert rc == 0
        assert "TSO: allowed" in capsys.readouterr().out

    def test_rejected_exits_one(self, capsys):
        rc = main(["check", "p: w(x)1 r(y)0 | q: w(y)1 r(x)0", "--model", "SC"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "NOT allowed" in out and "reason:" in out

    def test_views_flag(self, capsys):
        rc = main(["check", "p: w(x)1 | q: r(x)1", "--model", "PRAM", "--views"])
        assert rc == 0
        assert "S_{" in capsys.readouterr().out

    def test_parse_error_exits_two(self, capsys):
        rc = main(["check", "garbage input"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_model_exits_two(self, capsys):
        rc = main(["check", "p: w(x)1", "--model", "Nonsense"])
        assert rc == 2


class TestCheckStream:
    def _feed(self, monkeypatch, text):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(text))

    def test_streams_to_deny(self, capsys, monkeypatch):
        self._feed(monkeypatch, "p: w(x)1\nq: r(x)1\nq: r(x)0\n")
        rc = main(["check", "--stream", "--model", "SC,PRAM"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "[1] w_p(x)1  SC=admit  PRAM=admit" in out
        assert "[3] r_q(x)0  SC=DENY  PRAM=DENY" in out
        assert "final: SC=DENY  PRAM=DENY" in out
        assert "-- reuse:" in out

    def test_all_admit_exits_zero(self, capsys, monkeypatch):
        self._feed(monkeypatch, "# comment\np: w(x)1\n\nq: r(x)1\n")
        rc = main(["check", "--stream", "--model", "SC"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "[2] r_q(x)1  SC=admit" in out
        assert "final: SC=admit" in out

    def test_seed_history_argument(self, capsys, monkeypatch):
        self._feed(monkeypatch, "p: r(y)7\n")
        rc = main(
            ["check", "--stream", "p: w(x)1 w(x)2 | q: r(x)2 r(x)1"]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "seed history: 4 op(s)" in out
        assert "SC=DENY" in out

    def test_bad_line_exits_two(self, capsys, monkeypatch):
        self._feed(monkeypatch, "p: w(x)1\ngarbage\n")
        rc = main(["check", "--stream", "--model", "SC"])
        assert rc == 2
        assert "bad op line" in capsys.readouterr().err

    def test_without_stream_history_required(self, capsys):
        rc = main(["check"])
        assert rc == 2
        assert "required" in capsys.readouterr().err


class TestClassify:
    def test_lists_every_model(self, capsys):
        rc = main(["classify", "p: w(x)1 r(y)0 | q: w(y)1 r(x)0"])
        assert rc == 0
        out = capsys.readouterr().out
        for model in ("SC", "TSO", "PC", "PRAM", "Causal", "Hybrid"):
            assert model in out


class TestCatalog:
    def test_sweep(self, capsys):
        rc = main(["catalog"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fig1-sb" in out and "fig4-causal-not-tso" in out

    def test_single_entry_shows_verdicts(self, capsys):
        rc = main(["catalog", "--name", "fig1-sb"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "DIVERGES" not in out

    def test_unknown_entry(self, capsys):
        rc = main(["catalog", "--name", "nope"])
        assert rc == 2


class TestLattice:
    def test_default_run_covers_the_whole_registry(self, capsys):
        rc = main(["lattice"])
        assert rc == 0
        out = capsys.readouterr().out
        # The default panel is registry-derived: every claimed edge of
        # the extended lattice is measured, not just Figure 5's five.
        assert "lattice violations (31 claimed edges): 0" in out
        assert "strongest" in out

    def test_paper_flag_restricts_to_figure5(self, capsys):
        rc = main(["lattice", "--paper"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "lattice violations (5 claimed edges): 0" in out

    def test_explicit_model_list(self, capsys):
        rc = main(["lattice", "--models", "SC,TSO,PRAM"])
        assert rc == 0
        assert "claimed edges): 0" in capsys.readouterr().out

    def test_unknown_model_exits_two(self, capsys):
        rc = main(["lattice", "--models", "SC,Bogus"])
        assert rc == 2
        assert "Bogus" in capsys.readouterr().err

    def test_dot_output(self, capsys):
        rc = main(["lattice", "--dot"])
        assert rc == 0
        assert "digraph" in capsys.readouterr().out

    def test_jobs_flag_same_counts(self, capsys):
        rc = main(["lattice", "--jobs", "2", "--paper"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "210 canonical histories" in out
        assert "lattice violations (5 claimed edges): 0" in out


class TestVersion:
    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out


class TestSweep:
    def test_catalog_sweep(self, capsys):
        rc = main(["sweep", "--source", "catalog", "--models", "SC,TSO,PC"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "histories: 17 checked" in out
        assert "cache hit rate" in out
        assert "allowed counts" in out

    def test_sweep_writes_store(self, capsys, tmp_path):
        out_file = tmp_path / "results.jsonl"
        rc = main(
            ["sweep", "--models", "SC", "--jobs", "2", "--out", str(out_file)]
        )
        assert rc == 0
        lines = out_file.read_text().splitlines()
        assert any('"type":"result"' in line for line in lines)
        assert any('"type":"summary"' in line for line in lines)

    def test_sweep_resume_skips(self, capsys, tmp_path):
        out_file = tmp_path / "results.jsonl"
        assert main(["sweep", "--models", "SC", "--out", str(out_file)]) == 0
        capsys.readouterr()
        rc = main(
            ["sweep", "--models", "SC", "--out", str(out_file), "--resume"]
        )
        assert rc == 0
        assert "17 skipped" in capsys.readouterr().out

    def test_resume_without_out_rejected(self, capsys):
        rc = main(["sweep", "--resume"])
        assert rc == 2
        assert "--out" in capsys.readouterr().err

    def test_random_source(self, capsys):
        rc = main(
            ["sweep", "--source", "random", "--models", "SC", "--count", "5",
             "--seed", "1"]
        )
        assert rc == 0
        assert "histories: 5 checked" in capsys.readouterr().out

    def test_unknown_model_exits_two(self, capsys):
        rc = main(["sweep", "--models", "SC,Bogus"])
        assert rc == 2
        assert "unknown model" in capsys.readouterr().err

    def test_bad_p_write_exits_two(self, capsys):
        rc = main(["sweep", "--source", "random", "--p-write", "2.0"])
        assert rc == 2
        assert "p_write" in capsys.readouterr().err


class TestFuzz:
    def test_clean_campaign_exits_zero(self, capsys):
        rc = main(["fuzz", "--seed", "0", "--count", "20", "--shapes", "tiny,small"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fuzzed 20 histories" in out
        assert "no discrepancies" in out

    def test_corpus_written_and_resumable(self, capsys, tmp_path):
        corpus = tmp_path / "corpus.jsonl"
        args = ["fuzz", "--seed", "0", "--count", "10", "--shapes", "tiny",
                "--corpus", str(corpus)]
        assert main(args) == 0
        assert '"type":"progress"' in corpus.read_text()
        capsys.readouterr()
        assert main(args + ["--resume"]) == 0
        assert "10 already-checked samples skipped" in capsys.readouterr().out

    def test_resume_without_corpus_rejected(self, capsys):
        rc = main(["fuzz", "--resume"])
        assert rc == 2
        assert "--corpus" in capsys.readouterr().err

    def test_unknown_shape_exits_two(self, capsys):
        rc = main(["fuzz", "--shapes", "nonsense"])
        assert rc == 2
        assert "unknown shape" in capsys.readouterr().err

    def test_jobs_flag_same_verdicts(self, capsys):
        rc = main(["fuzz", "--seed", "2", "--count", "12", "--shapes", "tiny",
                   "--jobs", "2"])
        assert rc == 0
        assert "fuzzed 12 histories" in capsys.readouterr().out


class TestBakery:
    def test_rc_sc_random_runs_clean(self, capsys):
        rc = main(["bakery", "--machine", "rc_sc", "--runs", "10"])
        assert rc == 0
        assert "0/10" in capsys.readouterr().out

    def test_rc_pc_adversarial_violates(self, capsys):
        rc = main(["bakery", "--machine", "rc_pc", "--adversarial"])
        assert rc == 0
        assert "VIOLATED" in capsys.readouterr().out

    def test_sc_adversarial_holds(self, capsys):
        rc = main(["bakery", "--machine", "sc", "--adversarial"])
        assert rc == 0
        assert "held" in capsys.readouterr().out


class TestSpectrum:
    def test_frontier_reported(self, capsys):
        rc = main(["spectrum", "p: w(x)1 r(y)0 | q: w(y)1 r(x)0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "strength frontier" in out and "TSO" in out

    def test_unsatisfiable_history(self, capsys):
        rc = main(["spectrum", "p: r(x)9"])
        assert rc == 1
        assert "no model allows" in capsys.readouterr().out


class TestModels:
    def test_lists_models(self, capsys):
        rc = main(["models"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "SC" in out and "TSO-axiomatic" in out


class TestLintHistory:
    def test_denied_catalog_entry_exits_one(self, capsys):
        rc = main(["lint", "history", "fig1-sb", "--model", "SC"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "DENY" in out and "view-cycle" in out

    def test_undecided_exits_zero(self, capsys):
        # Ambiguous attribution (two candidate sources): no rule decides.
        rc = main(
            ["lint", "history", "p: w(x)1 | q: w(x)1 | r: r(x)1", "--model", "SC"]
        )
        assert rc == 0
        assert "unknown" in capsys.readouterr().out

    def test_admitted_exits_zero(self, capsys):
        rc = main(["lint", "history", "p: w(x)1 | q: r(x)1", "--model", "SC"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ADMIT" in out and "DENY" not in out

    def test_all_models_sweep(self, capsys):
        rc = main(["lint", "history", "fig1-sb"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "SC" in out and "Causal" in out

    def test_spec_less_model_rejected(self, capsys):
        rc = main(["lint", "history", "fig1-sb", "--model", "TSO-axiomatic"])
        assert rc == 2


class TestLintSpec:
    def test_registry_is_clean(self, capsys):
        rc = main(["lint", "spec"])
        assert rc == 0

    def test_broken_fixtures_exit_one(self, capsys):
        rc = main(["lint", "spec", "--broken-fixtures"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "SL001" in out and "BrokenOrdering" in out

    def test_single_spec(self, capsys):
        rc = main(["lint", "spec", "--name", "SC"])
        assert rc == 0
        assert "SC" in capsys.readouterr().out

    def test_unknown_spec_exits_two(self, capsys):
        rc = main(["lint", "spec", "--name", "Nonsense"])
        assert rc == 2


class TestLintProgram:
    def test_clean_program_exits_zero(self, capsys):
        rc = main(["lint", "program", "figure6"])
        assert rc == 0
        assert "properly labeled" in capsys.readouterr().out

    def test_racy_program_exits_one(self, capsys):
        rc = main(["lint", "program", "mislabeled-bakery"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "RACE" in out and "choosing" in out

    def test_unknown_program_exits_two(self, capsys):
        rc = main(["lint", "program", "nonsense"])
        assert rc == 2

    def test_file_input(self, tmp_path, capsys):
        path = tmp_path / "prog.txt"
        path.write_text("x := 1\ny := read x\n")
        rc = main(
            ["lint", "program", "--file", str(path), "--shared", "x"]
        )
        assert rc == 1
        assert "RACE" in capsys.readouterr().out


class TestSweepPrepass:
    def test_no_prepass_flag_matches_default_counts(self, capsys):
        rc = main(["sweep", "--models", "SC,Causal"])
        assert rc == 0
        fast = capsys.readouterr().out
        rc = main(["sweep", "--models", "SC,Causal", "--no-prepass"])
        assert rc == 0
        slow = capsys.readouterr().out
        get_counts = lambda out: [
            line for line in out.splitlines() if line.startswith("allowed")
        ]
        assert get_counts(fast) == get_counts(slow)
        assert "static pre-pass" in fast
        assert "static pre-pass" not in slow


class TestTrace:
    def test_acceptance_prefix_and_witness_agreement(self, capsys):
        """`trace fig1 TSO` narrates; verdict + views match check_with_spec."""
        from repro.checking import MODELS, check_with_spec
        from repro.litmus import CATALOG

        rc = main(["trace", "fig1", "TSO"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "history (fig1-sb):" in out          # prefix resolved
        assert "Tracing TSO" in out and "Verdict: TSO allowed" in out
        result = check_with_spec(
            MODELS["TSO"].spec, CATALOG["fig1-sb"].history, prepass=True
        )
        assert result.allowed
        assert "witness views:" in out
        for view in result.views.values():
            # render_views annotates δ_p (S_{p+w}); compare the sequences.
            assert " ".join(str(op) for op in view) in out

    def test_denied_history_exits_one(self, capsys):
        rc = main(["trace", "fig1-sb", "SC"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "Verdict: SC NOT allowed" in out
        assert "witness views:" not in out

    def test_no_prepass_narrates_the_search_instead(self, capsys):
        rc = main(["trace", "fig1-sb", "SC", "--no-prepass"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "Static pre-pass" not in out
        assert "common view stuck" in out

    def test_markdown_mode(self, capsys):
        rc = main(["trace", "fig1", "TSO", "--markdown"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "## Tracing TSO" in out and "```text" in out

    def test_litmus_text_still_accepted(self, capsys):
        rc = main(["trace", "p: w(x)1 | q: r(x)1", "PRAM"])
        assert rc == 0
        assert "history:" in capsys.readouterr().out

    def test_spec_less_model_exits_two(self, capsys):
        rc = main(["trace", "fig1-sb", "TSO-axiomatic"])
        assert rc == 2
        assert "spec-less" in capsys.readouterr().err

    def test_ambiguous_prefix_is_parsed_as_litmus_and_fails(self, capsys):
        rc = main(["trace", "fig", "SC"])  # several catalog names start with fig
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestProfile:
    def test_two_models_over_the_catalog(self, capsys):
        from repro.litmus import CATALOG

        rc = main(["profile", "--models", "SC,TSO"])
        assert rc == 0
        out = capsys.readouterr().out
        assert f"profiled {2 * len(CATALOG)} check(s)" in out
        assert "prepass" in out and "search" in out and "total" in out

    def test_counters_and_markdown(self, capsys):
        rc = main(["profile", "--models", "SC", "--counters", "--markdown"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "| model" in out and "prepass-rule" in out

    def test_repeat_multiplies_checks(self, capsys):
        from repro.litmus import CATALOG

        rc = main(["profile", "--models", "SC", "--repeat", "2"])
        assert rc == 0
        assert f"profiled {2 * len(CATALOG)} check(s)" in capsys.readouterr().out

    def test_unknown_model_exits_two(self, capsys):
        rc = main(["profile", "--models", "Nonsense"])
        assert rc == 2

    def test_bad_repeat_exits_two(self, capsys):
        rc = main(["profile", "--models", "SC", "--repeat", "0"])
        assert rc == 2


class TestCatalogNameResolution:
    def test_check_accepts_catalog_names(self, capsys):
        rc = main(["check", "fig1-sb", "--model", "TSO"])
        assert rc == 0
        assert "TSO: allowed" in capsys.readouterr().out

    def test_classify_accepts_prefixes(self, capsys):
        rc = main(["classify", "iriw"])
        assert rc == 0
        assert "SC" in capsys.readouterr().out
