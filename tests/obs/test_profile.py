"""Profiles: per-check timing records and their per-model aggregation."""

import json

from repro.checking.models import MODELS
from repro.kernel.search import check_with_spec
from repro.litmus import CATALOG, parse_history
from repro.obs import CheckProfile, ProfileAggregate, profile_check


class TestProfileCheck:
    def test_verdict_matches_unprofiled_call(self):
        spec = MODELS["TSO"].spec
        history = CATALOG["fig1-sb"].history
        plain = check_with_spec(spec, history, prepass=True)
        result, profile = profile_check(spec, history)
        assert result.allowed == plain.allowed == profile.allowed
        assert result.explored == plain.explored == profile.explored
        assert profile.model == spec.name

    def test_phases_and_counters_recorded(self):
        # Ambiguous attribution keeps the pre-pass undecided, so the
        # profile records all three phases including the real search.
        history = parse_history("p: w(x)1 | q: w(x)1 | r: r(x)1")
        _, profile = profile_check(MODELS["TSO"].spec, history)
        assert set(profile.phase_seconds) == {"prepass", "compile", "search"}
        assert all(s >= 0 for s in profile.phase_seconds.values())
        assert profile.counters["check-started"] == 1
        assert profile.counters["node"] > 0
        assert profile.total_seconds == sum(profile.phase_seconds.values())

    def test_prepass_decided_check_skips_the_search_phase(self):
        # SC denies fig1-sb in the pre-pass: no compile, no search.
        _, profile = profile_check(MODELS["SC"].spec, CATALOG["fig1-sb"].history)
        assert not profile.allowed
        assert "search" not in profile.phase_seconds
        assert profile.counters.get("node") is None

    def test_no_prepass_profiles_the_raw_kernel(self):
        _, profile = profile_check(
            MODELS["SC"].spec, CATALOG["fig1-sb"].history, prepass=False
        )
        assert "prepass" not in profile.phase_seconds
        assert "search" in profile.phase_seconds

    def test_to_dict_is_json_compatible(self):
        _, profile = profile_check(MODELS["TSO"].spec, CATALOG["fig1-sb"].history)
        d = profile.to_dict()
        assert json.loads(json.dumps(d)) == d


class TestAggregate:
    def _aggregate(self):
        agg = ProfileAggregate()
        for model in ("SC", "TSO"):
            for entry in ("fig1-sb", "mp"):
                _, p = profile_check(MODELS[model].spec, CATALOG[entry].history)
                agg.add(p)
        return agg

    def test_folds_per_model(self):
        agg = self._aggregate()
        assert agg.checks == {"SC": 2, "TSO": 2}
        assert set(agg.models()) == {"SC", "TSO"}

    def test_render_tables(self):
        agg = self._aggregate()
        text = agg.render()
        assert "model" in text and "total" in text and "SC" in text
        md = agg.render(markdown=True)
        assert md.startswith("| model")
        counters = agg.render_counters()
        assert "prepass-rule" in counters

    def test_empty_aggregate_renders_placeholders(self):
        agg = ProfileAggregate()
        assert agg.render() == "(no checks profiled)"
        assert agg.render_counters() == "(no counters recorded)"

    def test_synthetic_profiles_sum_exactly(self):
        agg = ProfileAggregate()
        agg.add(
            CheckProfile(
                model="M",
                allowed=True,
                explored=2,
                phase_seconds={"search": 0.25},
                counters={"node": 3},
            )
        )
        agg.add(
            CheckProfile(
                model="M", explored=1, phase_seconds={"search": 0.5}, counters={"node": 1}
            )
        )
        assert agg.allowed == {"M": 1}
        assert agg.explored == {"M": 3}
        assert agg.phase_seconds == {"M": {"search": 0.75}}
        assert agg.counters == {"M": {"node": 4}}
