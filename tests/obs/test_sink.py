"""The sink protocol: installation scoping, recording limits, timing."""

from repro.obs.events import NodeEntered, PhaseMark, PropagationApplied
from repro.obs.sink import (
    CountingSink,
    NullSink,
    RecordingSink,
    TimingSink,
    active_sink,
    tracing,
)


def _node(i):
    return NodeEntered(proc="p", depth=i, op=f"w_p(x){i}")


class TestInstallation:
    def test_default_is_no_sink(self):
        assert active_sink() is None

    def test_tracing_installs_and_restores(self):
        sink = RecordingSink()
        with tracing(sink) as yielded:
            assert yielded is sink
            assert active_sink() is sink
        assert active_sink() is None

    def test_nesting_restores_the_outer_sink(self):
        outer, inner = RecordingSink(), RecordingSink()
        with tracing(outer):
            with tracing(inner):
                assert active_sink() is inner
            assert active_sink() is outer
        assert active_sink() is None

    def test_restored_on_exception(self):
        try:
            with tracing(NullSink()):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert active_sink() is None


class TestRecordingSink:
    def test_keeps_order(self):
        sink = RecordingSink()
        events = [_node(0), PropagationApplied(edges=1), _node(1)]
        for e in events:
            sink.emit(e)
        assert sink.events == events
        assert sink.dropped == 0

    def test_of_kind_filters(self):
        sink = RecordingSink()
        for e in (_node(0), PropagationApplied(edges=1), _node(1)):
            sink.emit(e)
        assert sink.of_kind("node") == [_node(0), _node(1)]
        assert sink.of_kind("verdict") == []

    def test_limit_caps_memory_and_counts_drops(self):
        sink = RecordingSink(limit=2)
        for i in range(5):
            sink.emit(_node(i))
        assert sink.events == [_node(0), _node(1)]
        assert sink.dropped == 3


class TestCountingSink:
    def test_counts_per_kind(self):
        sink = CountingSink()
        for e in (_node(0), _node(1), PropagationApplied(edges=1)):
            sink.emit(e)
        assert sink.counts == {"node": 2, "propagation": 1}


class TestTimingSink:
    def test_pairs_phase_marks(self):
        sink = TimingSink()
        sink.emit(PhaseMark(phase="search", mark="start"))
        sink.emit(_node(0))
        sink.emit(PhaseMark(phase="search", mark="end"))
        assert set(sink.phase_seconds) == {"search"}
        assert sink.phase_seconds["search"] >= 0.0
        assert sink.counts["phase"] == 2

    def test_unmatched_start_contributes_nothing(self):
        sink = TimingSink()
        sink.emit(PhaseMark(phase="search", mark="start"))
        assert sink.phase_seconds == {}

    def test_end_without_start_is_ignored(self):
        sink = TimingSink()
        sink.emit(PhaseMark(phase="compile", mark="end"))
        assert sink.phase_seconds == {}

    def test_accumulates_across_pairs(self):
        sink = TimingSink()
        for _ in range(2):
            sink.emit(PhaseMark(phase="prepass", mark="start"))
            sink.emit(PhaseMark(phase="prepass", mark="end"))
        assert len(sink.phase_seconds) == 1
