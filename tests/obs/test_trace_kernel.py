"""Tracing observes — it never changes a verdict, witness, or effort figure.

The load-bearing property of the whole layer: for every catalog history
under every spec-backed model, the traced check returns exactly what the
untraced check returns, and the event stream is a faithful narration
(it ends in a matching verdict, its solved views agree with the witness).
"""

import pytest

from repro.checking.models import MODELS, model_names
from repro.kernel.search import check_with_spec
from repro.litmus import CATALOG
from repro.obs import RecordingSink, VerdictReached, render_trace, tracing

SPEC_MODELS = [n for n in model_names() if MODELS[n].spec is not None]
CASES = [(name, model) for name in CATALOG for model in SPEC_MODELS]


@pytest.mark.parametrize("prepass", [False, True], ids=["raw", "prepass"])
@pytest.mark.parametrize(
    "entry,model", CASES, ids=[f"{n}-{m}" for n, m in CASES]
)
def test_traced_equals_untraced(entry, model, prepass):
    spec = MODELS[model].spec
    history = CATALOG[entry].history
    plain = check_with_spec(spec, history, prepass=prepass)
    sink = RecordingSink()
    traced = check_with_spec(spec, history, prepass=prepass, trace=sink)

    assert traced.allowed == plain.allowed
    assert traced.explored == plain.explored
    if plain.allowed:
        assert {p: str(v) for p, v in traced.views.items()} == {
            p: str(v) for p, v in plain.views.items()
        }

    # The stream narrates the same outcome it returned.
    verdicts = sink.of_kind("verdict")
    assert len(verdicts) == 1
    assert verdicts[-1] == VerdictReached(
        model=spec.name,
        allowed=plain.allowed,
        explored=plain.explored,
        reason=verdicts[-1].reason,
    )
    # Nothing substantive follows the verdict — only phase-end marks
    # (the search phase closes in a finally after the verdict is known).
    tail = sink.events[sink.events.index(verdicts[-1]) + 1 :]
    assert all(e.kind == "phase" and e.mark == "end" for e in tail)
    assert sink.events[0].kind == "check-started"

    # Solved-view events match the returned witness on the allowed side.
    if plain.allowed and plain.views:
        solved = {e.proc: " ".join(e.order) for e in sink.of_kind("view-solved")}
        for proc, view in plain.views.items():
            ops_text = " ".join(str(op) for op in view)
            assert solved.get(proc) == ops_text or solved.get("*") == ops_text

    # And the narration renders without error in both modes.
    assert "Verdict" in render_trace(sink.events)
    assert "Verdict" in render_trace(sink.events, markdown=True)


def test_global_sink_sees_the_same_stream_as_the_trace_kwarg():
    spec = MODELS["TSO"].spec
    history = CATALOG["fig1-sb"].history
    direct = RecordingSink()
    check_with_spec(spec, history, prepass=True, trace=direct)
    with tracing(RecordingSink()) as ambient:
        check_with_spec(spec, history, prepass=True)
    assert ambient.events == direct.events


def test_trace_kwarg_shadows_the_ambient_sink():
    spec = MODELS["SC"].spec
    history = CATALOG["fig1-sb"].history
    explicit = RecordingSink()
    with tracing(RecordingSink()) as ambient:
        check_with_spec(spec, history, trace=explicit)
    assert explicit.events
    assert ambient.events == []


def test_max_steps_elides_deep_searches():
    spec = MODELS["SC"].spec
    history = CATALOG["coww-cross"].history  # ~84 placement/backtrack steps
    sink = RecordingSink()
    check_with_spec(spec, history, trace=sink)
    full = render_trace(sink.events)
    capped = render_trace(sink.events, max_steps=1)
    assert "elided" in capped and "elided" not in full
    assert len(capped) < len(full)
