"""Serialization round-trips for every trace-event kind."""

import json

import pytest

from repro.obs.events import (
    EVENT_KINDS,
    AttributionTried,
    Backtracked,
    CandidateTried,
    CheckStarted,
    LabeledExtraTried,
    NodeEntered,
    PhaseMark,
    PrefixReuse,
    PrepassRule,
    PropagationApplied,
    SessionAppend,
    VerdictReached,
    ViewSearch,
    ViewSolved,
    ViewStuck,
    event_from_dict,
    event_to_dict,
)

#: One representative instance per kind, with every field populated
#: (tuples non-empty so the list->tuple restoration is exercised).
SAMPLES = [
    CheckStarted(model="TSO", operations=4, processors=2),
    PhaseMark(phase="search", mark="start"),
    PrepassRule(model="SC", rule="view-cycle", outcome="deny", detail="cycle of 4"),
    AttributionTried(
        index=1, unique=True, assignment=(("r_p(y)0", ""), ("r_q(x)0", "w_p(x)1"))
    ),
    CandidateTried(index=2, chains=(("w_p(x)1", "w_q(y)1"), ("w_q(z)2",))),
    LabeledExtraTried(index=1, order=("w*_p(s)1", "r*_q(s)1")),
    PropagationApplied(edges=3),
    ViewSearch(proc="*", operations=4),
    NodeEntered(proc="p", depth=0, op="w_p(x)1"),
    Backtracked(proc="p", depth=1, op="r_p(y)0"),
    ViewSolved(proc="q", order=("r_q(x)0", "w_p(x)1")),
    ViewStuck(proc="q", reason="constraint-cycle"),
    VerdictReached(model="SC", allowed=False, explored=1, reason="exhausted"),
    SessionAppend(model="SC", op="w_p(x)1", operations=3, reused=True),
    PrefixReuse(model="SC", hits=2, misses=1, fallback=False),
]


def test_samples_cover_every_registered_kind():
    assert {type(e).kind for e in SAMPLES} == set(EVENT_KINDS)


@pytest.mark.parametrize("event", SAMPLES, ids=lambda e: type(e).kind)
def test_json_round_trip(event):
    wire = json.loads(json.dumps(event_to_dict(event)))
    assert event_from_dict(wire) == event


@pytest.mark.parametrize("event", SAMPLES, ids=lambda e: type(e).kind)
def test_to_dict_carries_the_kind_tag(event):
    d = event_to_dict(event)
    assert d["kind"] == type(event).kind
    assert EVENT_KINDS[d["kind"]] is type(event)


def test_default_fields_round_trip():
    assert event_from_dict(event_to_dict(ViewStuck(proc="p"))) == ViewStuck(
        proc="p", reason="search-exhausted"
    )


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown trace-event kind"):
        event_from_dict({"kind": "warp-core-breach"})
    with pytest.raises(ValueError):
        event_from_dict({"model": "SC"})  # kind missing entirely


def test_extra_keys_ignored():
    d = event_to_dict(PropagationApplied(edges=2))
    d["added_by_future_version"] = 42
    assert event_from_dict(d) == PropagationApplied(edges=2)


def test_events_are_frozen_and_hashable():
    e = NodeEntered(proc="p", depth=0, op="w_p(x)1")
    with pytest.raises(AttributeError):
        e.depth = 1
    assert len({e, NodeEntered(proc="p", depth=0, op="w_p(x)1")}) == 1
