"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.litmus import CATALOG, parse_history


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for reproducible tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def fig1():
    """Paper Figure 1: the store-buffering history (TSO, not SC)."""
    return CATALOG["fig1-sb"].history


@pytest.fixture
def fig2():
    """Paper Figure 2: PC history that is not TSO."""
    return CATALOG["fig2-pc-not-tso"].history


@pytest.fixture
def fig3():
    """Paper Figure 3: PRAM history that is not TSO."""
    return CATALOG["fig3-pram-not-tso"].history


@pytest.fixture
def fig4():
    """Paper Figure 4: causal history that is not TSO."""
    return CATALOG["fig4-causal-not-tso"].history


@pytest.fixture
def bakery_violation():
    """The Section 5 two-processor Bakery history (RC_pc yes, RC_sc no)."""
    return parse_history(
        "p1: w*(c0)1 r*(n1)0 w*(n0)1 w*(c0)0 r*(c1)0 r*(n1)0 w(cs)1 | "
        "p2: w*(c1)1 r*(n0)0 w*(n1)1 w*(c1)0 r*(c0)0 r*(n0)0 w(cs)2"
    )
