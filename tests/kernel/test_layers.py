"""Layer-by-layer unit tests: rf enumeration, serialization candidates,
compiled planes, and the history-plane sharing the driver relies on."""

import pytest

from repro.core.errors import CheckerError
from repro.engine.cache import RelationCache
from repro.kernel.constraints import (
    CompiledConstraints,
    compile_constraints,
    history_plane,
)
from repro.kernel.rf import impossible_read, iter_attributions
from repro.kernel.search import check_with_spec
from repro.kernel.serializations import forced_write_order, iter_mutual_candidates
from repro.litmus import parse_history
from repro.orders.memo import relation_memo
from repro.spec import ALL_SPECS
from repro.spec.registry import SC_SPEC, TSO_SPEC
from repro.spec.parameters import MutualConsistency, OperationSet


class TestReadsFromLayer:
    def test_impossible_read_detected(self):
        h = parse_history("p: w(x)1 | q: r(x)7")
        bad = impossible_read(h)
        assert bad is not None and bad.value == 7

    def test_no_impossible_read(self):
        h = parse_history("p: w(x)1 | q: r(x)1")
        assert impossible_read(h) is None

    def test_unambiguous_yields_single_attribution(self):
        h = parse_history("p: w(x)1 | q: r(x)1 r(x)0")
        attrs = list(iter_attributions(h, 100))
        assert len(attrs) == 1
        (rf,) = attrs
        read_one = h.op("q", 0)
        assert rf[read_one] == h.op("p", 0)
        assert rf[h.op("q", 1)] is None  # initial-value read

    def test_ambiguous_enumerates_product(self):
        # Two writes of the same value: the read has two candidates.
        h = parse_history("p: w(x)1 | q: w(x)1 | r: r(x)1")
        attrs = list(iter_attributions(h, 100))
        assert len(attrs) == 2

    def test_budget_exceeded_raises(self):
        h = parse_history("p: w(x)1 | q: w(x)1 | r: r(x)1 r(x)1")
        with pytest.raises(CheckerError):
            list(iter_attributions(h, 1))

    def test_read_without_source_yields_nothing(self):
        h = parse_history("p: w(x)1 | q: w(x)1 | r: r(x)1 r(x)9")
        assert list(iter_attributions(h, 100)) == []


class TestSerializationLayer:
    def test_forced_write_order_contains_program_order(self):
        h = parse_history("p: w(x)1 w(y)2 | q: w(x)3")
        forced = forced_write_order(h, None)
        assert forced.orders(h.op("p", 0), h.op("p", 1))
        assert not forced.orders(h.op("p", 0), h.op("q", 0))

    def test_forced_write_order_adds_rf_coherence(self):
        # q reads w1 and later writes w2: w1 precedes w2 in any admissible
        # write order (q's view has w1 before w2 and views agree on it).
        h = parse_history("p: w(x)1 | q: r(x)1 w(x)2")
        (rf,) = iter_attributions(h, 10)
        forced = forced_write_order(h, rf)
        assert forced.orders(h.op("p", 0), h.op("q", 1))

    def test_total_write_order_candidates_are_topological_sorts(self):
        h = parse_history("p: w(x)1 w(x)2 | q: w(y)3")
        (rf,) = iter_attributions(h, 10)
        cands = list(iter_mutual_candidates(TSO_SPEC, h, rf))
        # 3 writes with one forced pair (p's program order): 3 interleavings.
        assert len(cands) == 3
        for cand in cands:
            assert len(cand.chains) == 1 and len(cand.chains[0]) == 3

    def test_none_mutual_consistency_yields_one_empty_candidate(self):
        pram = next(
            s for s in ALL_SPECS
            if s.mutual_consistency is MutualConsistency.NONE
        )
        h = parse_history("p: w(x)1 | q: w(x)2")
        (rf,) = iter_attributions(h, 10)
        cands = list(iter_mutual_candidates(pram, h, rf))
        assert cands and all(c.chains == () for c in cands)


class TestHistoryPlane:
    def test_identity_cached_across_specs(self):
        h = parse_history("p: w(x)1 r(y)0 | q: w(y)1 r(x)0")
        assert history_plane(h) is history_plane(h)
        cc1 = CompiledConstraints(SC_SPEC, h)
        cc2 = CompiledConstraints(TSO_SPEC, h)
        assert cc1.hp is cc2.hp

    def test_view_members_put_own_operations_first(self):
        h = parse_history("p: w(x)1 r(y)0 | q: w(y)2 r(x)0")
        hp = history_plane(h)
        views = hp.views(OperationSet.ALL_REMOTE)
        start, end = hp.ranges["q"]
        assert views["q"].members[: end - start] == tuple(range(start, end))
        # view contents match the spec parameter's own definition
        expected = OperationSet.ALL_REMOTE.view_contents(h, "q")
        assert [hp.ops[i] for i in views["q"].members] == list(expected)

    def test_remote_writes_views_drop_remote_reads(self):
        h = parse_history("p: w(x)1 r(y)0 | q: w(y)2 r(x)0")
        hp = history_plane(h)
        views = hp.views(OperationSet.REMOTE_WRITES)
        ops = [hp.ops[i] for i in views["q"].members]
        assert h.op("p", 1) not in ops  # p's read is remote to q
        assert h.op("q", 1) in ops  # q's own read stays

    def test_unique_rf_matches_attribution_layer(self):
        h = parse_history("p: w(x)1 | q: r(x)1 r(x)0")
        hp = history_plane(h)
        (rf,) = iter_attributions(h, 10)
        assert hp.unique_rf == rf

    def test_ambiguous_history_has_no_unique_rf(self):
        h = parse_history("p: w(x)1 | q: w(x)1 | r: r(x)1")
        assert history_plane(h).unique_rf is None


class TestCacheTwinRegression:
    """A compiled plane must serve value-equal history twins.

    The engine's relation cache keys by canonical history key, so two
    parses of the same litmus text share one table; a plane compiled for
    the first parse is handed the second parse's operation objects.
    """

    TEXTS = (
        "p: w(x)1 r(y)0 | q: w(y)1 r(x)0",
        "p: w(x)1 w(x)2 | q: r(x)2 r(x)1",
        "p: w(x)1 | q: w(x)2 | r: r(x)1 r(x)2 | s: r(x)2 r(x)1",
    )

    @pytest.mark.parametrize("text", TEXTS)
    def test_twins_share_compiled_constraints(self, text):
        h1, h2 = parse_history(text), parse_history(text)
        with relation_memo(RelationCache()):
            cc1 = compile_constraints(SC_SPEC, h1)
            cc2 = compile_constraints(SC_SPEC, h2)
            assert cc1 is cc2

    @pytest.mark.parametrize("text", TEXTS)
    def test_twin_verdicts_identical_under_shared_cache(self, text):
        h1, h2 = parse_history(text), parse_history(text)
        with relation_memo(RelationCache()):
            for spec in ALL_SPECS:
                a = check_with_spec(spec, h1)
                b = check_with_spec(spec, h2)
                assert (a.allowed, a.explored, a.reason) == (
                    b.allowed,
                    b.explored,
                    b.reason,
                ), spec.name
