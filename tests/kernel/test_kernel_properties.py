"""Property tests: the kernel agrees with every other decision procedure.

Three independent implementations exist for most models — the kernel's
generic search, a hand-written fast checker, and an operational machine.
Any disagreement on any history is a bug in one of them.  Swept over the
full litmus catalog plus seeded random histories.
"""

import numpy as np
import pytest

from repro.analysis import machine_history, random_history
from repro.checking import MODELS
from repro.kernel.search import check_with_spec
from repro.litmus import CATALOG
from repro.machines import MACHINE_MODEL_PAIRS

#: Models whose registered checker is an independent fast path (the rest
#: already dispatch to the kernel, so comparing them would be a tautology).
FAST_MODELS = tuple(
    name
    for name, m in MODELS.items()
    if m.spec is not None and m.checker.__module__ != "repro.checking.models"
)


def _random_histories(n=200, seed=20260806):
    rng = np.random.default_rng(seed)
    out = []
    for i in range(n):
        procs = 2 + (i % 2)  # alternate 2- and 3-processor shapes
        out.append(
            random_history(rng, procs=procs, ops_per_proc=3, locations=("x", "y"))
        )
    return out


@pytest.mark.parametrize("model", FAST_MODELS)
def test_kernel_agrees_with_fast_checker_on_catalog(model):
    m = MODELS[model]
    for name, test in CATALOG.items():
        h = test.history
        assert check_with_spec(m.spec, h).allowed == m.check(h).allowed, (
            f"{model} disagrees with kernel on {name}"
        )


@pytest.mark.parametrize("model", FAST_MODELS)
def test_kernel_agrees_with_fast_checker_on_random_histories(model):
    m = MODELS[model]
    for h in _random_histories():
        assert check_with_spec(m.spec, h).allowed == m.check(h).allowed, (
            f"{model} disagrees with kernel on:\n{h}"
        )


def test_catalog_expectations_hold_under_kernel():
    """The catalog's recorded per-model verdicts are kernel verdicts too."""
    for name, test in CATALOG.items():
        h = test.history
        for model, expected in test.expected.items():
            spec = MODELS[model].spec
            if spec is None:
                continue
            assert check_with_spec(spec, h).allowed == expected, (
                f"catalog expectation {name} × {model}"
            )


@pytest.mark.parametrize("machine_cls,model", MACHINE_MODEL_PAIRS)
def test_machine_traces_allowed_by_kernel(machine_cls, model):
    """Operational ⊆ declarative, with the kernel as the decider."""
    spec = MODELS[model].spec
    if spec is None:
        pytest.skip(f"{model} has no framework spec")
    rng = np.random.default_rng(hash(model) % 2**31)
    for _ in range(20):
        machine = machine_cls(("p", "q"))
        h = machine_history(machine, rng, ops_per_proc=3)
        assert check_with_spec(spec, h).allowed, (
            f"{machine.name} trace rejected by kernel {model}:\n{h}"
        )
