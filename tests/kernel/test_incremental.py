"""Incremental checking is byte-identical to one-shot checking.

The streaming refactor's acceptance bar: replaying any history op by op
through :class:`~repro.kernel.incremental.IncrementalCheck` must give —
at *every* prefix — the same verdict, reason, exploration count, witness
views and counterexample kind as a fresh
:func:`~repro.kernel.search.check_with_spec` of that prefix, prepass on
and off.  Plus the substrate contracts: a grown plane equals a freshly
compiled one field for field, streams re-index and detect rescues, and
DENY results harden under :meth:`CheckResult.extend` while ADMITs refuse.
"""

from itertools import zip_longest

import pytest

from repro.checking.models import MODELS, model_names
from repro.core.errors import CheckerError
from repro.kernel.constraints import HistoryPlane, extend_plane
from repro.kernel.incremental import HistoryStream, IncrementalCheck
from repro.kernel.results import CheckResult
from repro.kernel.search import check_with_spec
from repro.litmus import CATALOG, parse_history

SPEC_MODELS = tuple(n for n in model_names() if MODELS[n].spec is not None)


def interleaved(history):
    """The history's operations, round-robin across processors.

    Per-processor program order is preserved (the stream re-indexes each
    op onto its processor's tail), while consecutive appends alternate
    processors — the adversarial order for prefix reuse, since almost
    every append touches a different processor than the last.
    """
    per_proc = {}
    for op in history.operations:
        per_proc.setdefault(op.proc, []).append(op)
    return [
        op
        for round_ops in zip_longest(*per_proc.values())
        for op in round_ops
        if op is not None
    ]


def fingerprint(result):
    views = sorted(result.views.items(), key=lambda kv: str(kv[0]))
    return (
        result.allowed,
        result.explored,
        result.reason,
        result.counterexample.kind if result.counterexample else None,
        [(str(proc), [str(op) for op in view]) for proc, view in views],
    )


def assert_stream_parity(history, models=SPEC_MODELS, prepass=(False, True)):
    for name in models:
        spec = MODELS[name].spec
        for pp in prepass:
            stream = HistoryStream()
            inc = IncrementalCheck(spec, stream, prepass=pp)
            inc.check()
            for op in interleaved(history):
                placed, reused = stream.append(op)
                got = inc.on_appended((placed,), reused)
                want = check_with_spec(spec, stream.history, prepass=pp)
                assert fingerprint(got) == fingerprint(want), (
                    f"{name} prepass={pp} at "
                    f"{len(stream.history.operations)} ops"
                )


@pytest.mark.parametrize("name", list(CATALOG))
def test_catalog_prefix_parity(name):
    """Every catalog history × spec model × prefix, prepass on and off."""
    assert_stream_parity(CATALOG[name].history)


@pytest.mark.parametrize(
    "text",
    [
        # Regression: an appended read's own-view constraints gain
        # *outgoing* edges, flipping a remembered-stuck candidate to
        # cyclic — fresh search rejects it uncounted, so the replay must
        # re-probe the acyclicity gate (found by the incremental fuzz
        # oracle; explored diverged while the DENY verdict agreed).
        "p0: w(x)2 | p1: w(x)5 r(x)2 | p2: w(x)7 w(x)8 r(x)0",
        "p0: r(x)2 w(x)2 w(x)3 | p1: w(x)4 w(x)5 r(x)4",
        # Ambiguous attribution (duplicate write values): reuse must
        # stand down, verdicts still identical.
        "p: w(x)1 | q: w(x)1 | r: r(x)1",
        "p: w(x)1 | q: w(x)1 r(x)1 | r: r(x)1 r(x)0",
        # A rescue mid-stream: the read of 2 is appended before w(x)2
        # exists on the other processor, then the write arrives.
        "p: r(x)2 | q: w(x)2",
    ],
)
def test_adversarial_prefix_parity(text):
    assert_stream_parity(parse_history(text))


def test_labeled_discipline_prefix_parity():
    """RC models skip failure memory but still stream byte-identically."""
    labeled = [
        n
        for n in SPEC_MODELS
        if MODELS[n].spec.labeled_discipline is not None
    ]
    assert labeled, "expected at least one labeled-discipline spec"
    h = parse_history("p: w*(s)1 w(x)1 r*(s)1 | q: w*(s)2 r(x)0 r*(s)2")
    assert any(op.labeled for op in h.operations)
    assert_stream_parity(h, models=labeled)


# -- the plane substrate ------------------------------------------------------


def plane_fingerprint(plane):
    from repro.spec.parameters import OperationSet

    def vp(v):
        return (v.proc, v.members, v.op_loc, v.read_vals, v.write_vals)

    return {
        "ops": plane.ops,
        "index": plane.index,
        "n": plane.n,
        "uni_loc": plane.uni_loc,
        "uni_read": plane.uni_read,
        "uni_write": plane.uni_write,
        "writers_by_loc": plane.writers_by_loc,
        "write_idx": plane.write_idx,
        "ranges": plane.ranges,
        "masks": plane.masks,
        "candidates": plane.candidates,
        "unique_rf": plane.unique_rf,
        "views": {
            (str(opset), str(proc)): vp(v)
            for opset in OperationSet
            for proc, v in plane.views(opset).items()
        },
        "universe": vp(plane.universe_plane),
    }


@pytest.mark.parametrize("name", list(CATALOG))
def test_grown_plane_equals_fresh_compile(name):
    """extend_plane produces the same plane a fresh compile would."""
    stream = HistoryStream()
    for op in interleaved(CATALOG[name].history):
        placed, reused = stream.append(op)
        if reused:
            fresh = HistoryPlane(stream.history)
            assert plane_fingerprint(stream.plane) == plane_fingerprint(
                fresh
            ), f"{name} at {len(stream.history.operations)} ops"


def test_extend_plane_is_what_the_stream_uses():
    h1 = parse_history("p: w(x)1")
    plane = HistoryPlane(h1)
    h2 = parse_history("p: w(x)1 r(x)1")
    grown = extend_plane(plane, h2, h2.operations[-1])
    assert plane_fingerprint(grown) == plane_fingerprint(HistoryPlane(h2))


# -- HistoryStream mechanics --------------------------------------------------


def test_stream_reindexes_appended_ops():
    from repro.litmus.dsl import parse_operations

    stream = HistoryStream()
    # Both ops parsed with index 0; the stream owns the numbering.
    (a,) = parse_operations("p", "w(x)1")
    (b,) = parse_operations("p", "r(x)1")
    pa, _ = stream.append(a)
    pb, _ = stream.append(b)
    assert (pa.index, pb.index) == (0, 1)
    assert [op.index for op in stream.history.ops_of("p")] == [0, 1]


def test_stream_detects_rescues():
    stream = HistoryStream()
    ops = interleaved(parse_history("p: r(x)2 | q: w(x)2"))
    _, first = stream.append(ops[0])  # the read: nothing to rescue
    assert first is True
    _, second = stream.append(ops[1])  # the write rescues the read
    assert second is False
    assert stream.last_reused is False


def test_stream_refuses_to_outgrow_the_solver():
    from repro.litmus.dsl import parse_operations

    stream = HistoryStream()
    (op,) = parse_operations("p", "w(x)1")
    for _ in range(64):
        stream.append(op)
    with pytest.raises(CheckerError, match="64-operation"):
        stream.append(op)


def test_stream_seeded_with_history():
    h = parse_history("p: w(x)1 | q: r(x)1")
    stream = HistoryStream(h)
    assert len(stream) == 2
    (op,) = parse_history("q: r(x)1").operations
    placed, _ = stream.append(op)
    assert placed.index == 1  # q already had one op
    assert len(stream.history.operations) == 3


# -- CheckResult.extend -------------------------------------------------------


def test_deny_extends_admit_refuses():
    deny = CheckResult("SC", False, reason="nope", explored=3)
    extended = deny.extend(explored=5)
    assert (extended.allowed, extended.explored, extended.reason) == (
        False,
        5,
        "nope",
    )
    admit = CheckResult("SC", True, explored=1)
    with pytest.raises(ValueError):
        admit.extend(explored=2)


# -- session-level behavior ---------------------------------------------------


def test_incremental_check_owns_a_stream_by_default():
    inc = IncrementalCheck(MODELS["SC"].spec)
    (op,) = parse_history("p: w(x)1").operations
    result = inc.append(op)
    assert result.allowed
    assert len(inc.history.operations) == 1
    assert len(inc.results) == 1


def test_results_log_one_entry_per_check():
    spec = MODELS["SC"].spec
    inc = IncrementalCheck(spec)
    inc.check()
    for op in interleaved(parse_history("p: w(x)1 | q: r(x)1 r(x)0")):
        inc.append(op)
    assert len(inc.results) == 4  # baseline + three appends
    assert [r.allowed for r in inc.results] == [True, True, True, False]


def test_rescuing_append_can_flip_deny_back_to_admit():
    """A DENY is provisional while a future write can rescue a read."""
    spec = MODELS["SC"].spec
    inc = IncrementalCheck(spec)
    ops = interleaved(parse_history("p: w(x)1 w(x)2 | q: r(x)2"))
    verdicts = [inc.append(op).allowed for op in ops]
    # w(x)1 admits; r(x)2 observes a not-yet-written value (DENY); the
    # arriving w(x)2 rescues it (full recompile) and the prefix admits.
    assert verdicts == [True, False, True]


def test_deny_is_sticky_under_non_rescuing_appends():
    """A denied prefix stays denied when appends rescue no read."""
    spec = MODELS["SC"].spec
    inc = IncrementalCheck(spec)
    for op in interleaved(parse_history("p: w(x)1 w(x)2 | q: r(x)2 r(x)1")):
        result = inc.append(op)
    assert not result.allowed  # the classic coherence violation
    # Fresh-value writes and initial-value reads rescue nothing; the
    # denial extends through the fast path and the resumed search alike.
    for text in ("p: w(y)7", "q: r(z)0", "p: r(y)7"):
        (op,) = parse_history(text).operations
        result = inc.append(op)
        assert not result.allowed
