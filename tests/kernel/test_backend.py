"""The mask-backend registry, both backends, and the plane-cache LRU.

Three contracts from the backend PR:

* the registry — names resolve, the active backend is process-global
  with an env default, ``use_backend`` scopes and restores;
* semantics — the numpy backend's closure/acyclicity/gate answers equal
  the pure-Python reference's on crafted planes (cycles, self-loops,
  empty universes, full chains) and at every supported width;
* the plane cache — a bounded identity-keyed LRU with observable
  hit/miss/eviction counters, under which interleaved sessions no
  longer evict each other (the regression the single slot had).
"""

import pytest

from repro.core.errors import KernelError
from repro.kernel import backend as backend_mod
from repro.kernel.backend import (
    MaskBackend,
    RecordingBackend,
    active_backend,
    available_backends,
    get_backend,
    set_backend,
    use_backend,
)
from repro.kernel.constraints import (
    close_masks,
    configure_plane_cache,
    history_plane,
    install_plane,
    masks_acyclic,
    plane_cache_stats,
)
from repro.litmus import parse_history

# -- the registry --------------------------------------------------------------


def test_builtin_backends_registered():
    assert "python" in available_backends()
    assert "numpy" in available_backends()
    assert get_backend("python").name == "python"
    assert get_backend("numpy").name == "numpy"


def test_get_backend_unknown_name():
    with pytest.raises(KernelError, match="unknown"):
        get_backend("fortran")


def test_get_backend_returns_singleton():
    assert get_backend("numpy") is get_backend("numpy")


def test_set_backend_by_name_and_instance():
    try:
        set_backend("numpy")
        assert active_backend().name == "numpy"
        inst = get_backend("python")
        set_backend(inst)
        assert active_backend() is inst
    finally:
        set_backend("python")


def test_use_backend_scopes_and_restores():
    before = active_backend()
    with use_backend("numpy"):
        assert active_backend().name == "numpy"
        with use_backend("python"):
            assert active_backend().name == "python"
        assert active_backend().name == "numpy"
    assert active_backend() is before


def test_use_backend_restores_on_error():
    before = active_backend()
    with pytest.raises(RuntimeError):
        with use_backend("numpy"):
            raise RuntimeError("boom")
    assert active_backend() is before


def test_env_default_resolution(monkeypatch):
    monkeypatch.setenv(backend_mod.BACKEND_ENV, "numpy")
    monkeypatch.setattr(backend_mod, "_ACTIVE", None)
    assert active_backend().name == "numpy"
    monkeypatch.setenv(backend_mod.BACKEND_ENV, "")
    monkeypatch.setattr(backend_mod, "_ACTIVE", None)
    assert active_backend().name == "python"


def test_recording_backend_records_gate_calls():
    rec = RecordingBackend(get_backend("python"))
    out = rec.gate_batch([[0, 1], [2, 1]], 2)
    assert rec.gate_calls == [([[0, 1], [2, 1]], 2)]
    # Row 0: edge 0->1, acyclic; row 1: a 2-cycle, gated out.
    assert out[0] is not None and out[1] is None


# -- semantics: numpy == reference ---------------------------------------------

#: Crafted planes: (masks, n) covering the shapes the search produces.
PLANES = [
    ([], 0),
    ([0], 1),
    ([1], 1),  # self-loop
    ([0, 1, 3], 3),  # chain, closed
    ([0, 1, 2], 3),  # chain needing closure (2 depends on 1 only)
    ([2, 4, 1], 3),  # 3-cycle
    ([0, 1, 0, 5], 4),  # diamond-ish
    ([0b0000, 0b0001, 0b0011, 0b0111], 4),  # total order
    ([8, 0, 2, 4], 4),  # 0<-3, 2<-1, 3<-2: chain through the middle
]


@pytest.mark.parametrize("masks,n", PLANES)
def test_close_matches_reference(masks, n):
    assert get_backend("numpy").close(masks, n) == close_masks(masks)


@pytest.mark.parametrize("masks,n", PLANES)
def test_acyclic_matches_reference(masks, n):
    assert get_backend("numpy").acyclic(masks, n) == masks_acyclic(masks, n)


@pytest.mark.parametrize("masks,n", PLANES)
def test_gate_matches_reference(masks, n):
    py = get_backend("python").gate(masks, n)
    np_ = get_backend("numpy").gate(masks, n)
    assert py == np_


def test_gate_batch_mixed_verdicts():
    batch = [[0, 1, 2], [2, 4, 1], [0, 0, 0]]
    out = get_backend("numpy").gate_batch(batch, 3)
    ref = [get_backend("python").gate(m, 3) for m in batch]
    assert out == ref
    assert out[1] is None  # the cycle is gated out


@pytest.mark.parametrize("n", [1, 15, 16, 17, 31, 32, 33, 63, 64])
def test_widths_chain_plane(n):
    # A full chain at every dtype boundary: closure is the strict
    # lower-triangle, acyclicity holds.
    chain = [(1 << i) - 1 if i else 0 for i in range(n)]
    nb = get_backend("numpy")
    assert nb.close(chain, n) == close_masks(chain)
    assert nb.acyclic(chain, n) is True
    # And a cycle closing the chain is rejected.
    cyclic = list(chain)
    cyclic[0] |= 1 << (n - 1)
    assert nb.acyclic(cyclic, n) == masks_acyclic(cyclic, n)


def test_width_over_64_rejected():
    from repro.kernel.backend.matrix import word_dtype

    with pytest.raises(ValueError):
        word_dtype(65)


def test_empty_batch():
    nb = get_backend("numpy")
    assert nb.gate_batch([], 5) == []
    assert nb.close_batch([], 5) == []
    assert nb.acyclic_batch([], 5) == []


# -- the plane-cache LRU -------------------------------------------------------


@pytest.fixture
def small_plane_cache():
    configure_plane_cache(capacity=2)
    yield
    configure_plane_cache(capacity=64)


def _histories(k):
    return [parse_history(f"p: w(x){i + 1} | q: r(x){i + 1}") for i in range(k)]


def test_plane_cache_hit_and_miss_counters(small_plane_cache):
    (h,) = _histories(1)
    plane = history_plane(h)
    stats = plane_cache_stats()
    assert (stats["hits"], stats["misses"]) == (0, 1)
    assert history_plane(h) is plane
    stats = plane_cache_stats()
    assert (stats["hits"], stats["misses"]) == (1, 1)
    assert stats["size"] == 1 and stats["capacity"] == 2


def test_plane_cache_interleaved_histories_keep_entries(small_plane_cache):
    # The single-slot regression: two live histories checked in turn must
    # both stay resident (capacity permitting), not evict each other.
    h1, h2 = _histories(2)
    p1, p2 = history_plane(h1), history_plane(h2)
    for _ in range(3):
        assert history_plane(h1) is p1
        assert history_plane(h2) is p2
    stats = plane_cache_stats()
    assert stats["misses"] == 2 and stats["evictions"] == 0


def test_plane_cache_evicts_lru(small_plane_cache):
    h1, h2, h3 = _histories(3)
    p1 = history_plane(h1)
    history_plane(h2)
    history_plane(h1)  # touch h1 so h2 is the LRU entry
    history_plane(h3)  # evicts h2
    assert plane_cache_stats()["evictions"] == 1
    assert history_plane(h1) is p1  # still resident
    misses = plane_cache_stats()["misses"]
    history_plane(h2)  # rebuilt
    assert plane_cache_stats()["misses"] == misses + 1


def test_install_plane_overrides(small_plane_cache):
    h1, h2 = _histories(2)
    plane = history_plane(h1)
    install_plane(h2, plane)
    assert history_plane(h2) is plane


def test_configure_plane_cache_validates():
    with pytest.raises(KernelError):
        configure_plane_cache(capacity=0)
    configure_plane_cache(capacity=64)


def test_plane_cache_thread_safe(small_plane_cache):
    """Concurrent lookups under constant eviction must never raise.

    The serve layer checks on a thread-pool executor; without the cache
    lock, an eviction between one thread's ``get`` hit and its
    ``move_to_end`` raises ``KeyError``.  Capacity 2 with four live
    histories keeps the cache churning at the boundary.
    """
    from concurrent.futures import ThreadPoolExecutor

    histories = _histories(4)

    def hammer(_):
        for _ in range(300):
            for h in histories:
                assert history_plane(h).history is h
        return True

    with ThreadPoolExecutor(max_workers=8) as pool:
        assert all(pool.map(hammer, range(8)))
    stats = plane_cache_stats()
    assert stats["size"] <= stats["capacity"]


# -- the protocol's default batch implementations ------------------------------


class _TinyBackend(MaskBackend):
    """A minimal third-party backend: only the two abstract ops."""

    name = "tiny"

    def close(self, masks, n):
        return close_masks(list(masks))

    def acyclic(self, masks, n):
        return masks_acyclic(masks, n)


def test_custom_backend_inherits_batch_defaults():
    tiny = _TinyBackend()
    batch = [[0, 1, 2], [2, 4, 1]]
    assert tiny.gate_batch(batch, 3) == get_backend("python").gate_batch(batch, 3)
    assert tiny.close_batch(batch, 3) == [close_masks(m) for m in batch]
    assert tiny.acyclic_batch(batch, 3) == [masks_acyclic(m, 3) for m in batch]
