"""The kernel is byte-identical to the pre-kernel generic solver.

The refactor's acceptance bar: on every catalog history × spec pair the
kernel must reproduce the frozen legacy solver's verdict, exploration
count, reason string, and witness views exactly — not just the boolean.
"""

import pytest

from repro.checking._legacy_solver import legacy_check_with_spec
from repro.kernel.search import check_with_spec
from repro.litmus import CATALOG
from repro.spec import ALL_SPECS


def _fingerprint(result):
    views = sorted(result.views.items(), key=lambda kv: str(kv[0]))
    return (
        result.allowed,
        result.explored,
        result.reason,
        [(proc, list(view)) for proc, view in views],
    )


@pytest.mark.parametrize("name", list(CATALOG))
def test_kernel_matches_legacy_on_catalog(name):
    h = CATALOG[name].history
    for spec in ALL_SPECS:
        legacy = legacy_check_with_spec(spec, h)
        kernel = check_with_spec(spec, h)
        assert _fingerprint(kernel) == _fingerprint(legacy), (
            f"{name} × {spec.name}"
        )


def test_kernel_matches_legacy_on_ambiguous_histories():
    """Duplicate write values force attribution enumeration in both."""
    from repro.litmus import parse_history

    texts = (
        "p: w(x)1 | q: w(x)1 | r: r(x)1",
        "p: w(x)1 w(y)1 | q: r(y)1 r(x)1",
        "p: w(x)1 | q: w(x)1 r(x)1 | r: r(x)1 r(x)0",
    )
    for text in texts:
        h = parse_history(text)
        for spec in ALL_SPECS:
            legacy = legacy_check_with_spec(spec, h)
            kernel = check_with_spec(spec, h)
            assert _fingerprint(kernel) == _fingerprint(legacy), (
                f"{text} × {spec.name}"
            )
