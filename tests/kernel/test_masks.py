"""Unit tests for the kernel's bitmask primitives (layer 3 helpers)."""

from repro.kernel.constraints import (
    chain_masks,
    close_masks,
    masks_acyclic,
    restrict_masks,
)


class TestChainMasks:
    def test_total_order_pairs(self):
        masks = [0] * 4
        chain_masks(masks, [2, 0, 3])
        # 2 < 0 < 3: each member's mask holds every earlier member.
        assert masks[2] == 0
        assert masks[0] == 1 << 2
        assert masks[3] == (1 << 2) | (1 << 0)
        assert masks[1] == 0

    def test_accumulates_onto_existing_masks(self):
        masks = [0, 1 << 0, 0]
        chain_masks(masks, [1, 2])
        assert masks[1] == 1 << 0  # untouched prior constraint
        assert masks[2] == 1 << 1

    def test_chain_is_already_transitively_closed(self):
        masks = [0] * 5
        chain_masks(masks, range(5))
        assert close_masks(masks) == masks


class TestCloseMasks:
    def test_two_step_path(self):
        # 0 -> 1 -> 2 closes to 0 -> 2.
        masks = [0, 1 << 0, 1 << 1]
        closed = close_masks(masks)
        assert closed[2] == (1 << 1) | (1 << 0)

    def test_does_not_mutate_input(self):
        masks = [0, 1 << 0, 1 << 1]
        close_masks(masks)
        assert masks == [0, 1 << 0, 1 << 1]

    def test_closure_of_cycle_is_total(self):
        masks = [1 << 2, 1 << 0, 1 << 1]  # 0 -> 1 -> 2 -> 0
        closed = close_masks(masks)
        assert all(m == 0b111 for m in closed)


class TestMasksAcyclic:
    def test_empty_is_acyclic(self):
        assert masks_acyclic([0, 0, 0], 3)

    def test_chain_is_acyclic(self):
        masks = [0] * 4
        chain_masks(masks, range(4))
        assert masks_acyclic(masks, 4)

    def test_two_cycle_detected(self):
        assert not masks_acyclic([1 << 1, 1 << 0], 2)

    def test_long_cycle_detected(self):
        masks = [1 << 3, 1 << 0, 1 << 1, 1 << 2]
        assert not masks_acyclic(masks, 4)


class TestRestrictMasks:
    def test_reindexes_to_local_positions(self):
        # Universe edges: 0 -> 2, 1 -> 2; restrict to members (2, 0).
        masks = [0, 0, (1 << 0) | (1 << 1)]
        local = restrict_masks(masks, [2, 0])
        # Local bit 1 is universe 0; 2's mask keeps only member preds.
        assert local == [1 << 1, 0]

    def test_drops_edges_to_non_members(self):
        masks = [0, 1 << 0, 1 << 1]
        assert restrict_masks(masks, [0, 2]) == [0, 0]
