"""Tests for the litmus text notation."""

import pytest

from repro.core import OpKind, ParseError
from repro.litmus import format_history, parse_history, parse_operations


class TestParse:
    def test_oneline(self):
        h = parse_history("p: w(x)1 r(y)0 | q: w(y)1 r(x)0")
        assert h.procs == ("p", "q")
        assert len(h.operations) == 4

    def test_multiline_with_comments(self):
        h = parse_history(
            """
            # Figure 1
            p: w(x)1 r(y)0   # writer then reader
            q: w(y)1 r(x)0
            """
        )
        assert len(h.operations) == 4

    def test_labeled_ops(self):
        h = parse_history("p: w*(s)1 r*(s)1")
        assert all(op.labeled for op in h.operations)

    def test_rmw(self):
        h = parse_history("p: u(l)0->1")
        op = h.op("p", 0)
        assert op.kind is OpKind.RMW
        assert op.read_value == 0 and op.value == 1

    def test_negative_values(self):
        h = parse_history("p: w(x)-3 r(x)-3")
        assert h.op("p", 0).value == -3

    def test_array_locations(self):
        h = parse_history("p: w(number[0])1")
        assert h.op("p", 0).location == "number[0]"

    def test_whitespace_insensitive(self):
        h = parse_history("p:w(x)1   r( y )0")
        assert len(h.ops_of("p")) == 2

    def test_empty_rejected(self):
        with pytest.raises(ParseError):
            parse_history("   \n  ")

    def test_malformed_row_rejected(self):
        with pytest.raises(ParseError):
            parse_history("w(x)1 r(y)0")

    def test_duplicate_proc_rejected(self):
        with pytest.raises(ParseError):
            parse_history("p: w(x)1 | p: r(x)1")

    def test_garbage_op_rejected(self):
        with pytest.raises(ParseError):
            parse_history("p: q(x)1")

    def test_write_with_arrow_rejected(self):
        with pytest.raises(ParseError):
            parse_history("p: w(x)1->2")

    def test_rmw_without_arrow_rejected(self):
        with pytest.raises(ParseError):
            parse_history("p: u(x)1")

    def test_parse_operations_bare(self):
        ops = parse_operations("p", "w(x)1 r(y)0")
        assert len(ops) == 2 and ops[0].proc == "p"


class TestFormat:
    def test_roundtrip_multiline(self):
        text = "p: w(x)1 r(y)0\nq: w*(y)1 u(l)0->1"
        h = parse_history(text)
        assert parse_history(format_history(h)) == h

    def test_roundtrip_oneline(self):
        h = parse_history("p: w(x)1 | q: r(x)1")
        assert parse_history(format_history(h, oneline=True)) == h

    def test_labeled_star_preserved(self):
        h = parse_history("p: w*(s)1")
        assert "w*(s)1" in format_history(h)
