"""Every catalog expectation must match the checkers — Figures 1-4 included.

This is the machine-checked version of the paper's litmus figures: each
``expected`` entry is asserted against the corresponding checker.
"""

import pytest

from repro.checking import check
from repro.litmus import CATALOG, get_test, paper_figures, catalog_names

CASES = [
    (name, model, expected)
    for name, t in CATALOG.items()
    for model, expected in t.expected.items()
]


@pytest.mark.parametrize(
    "name,model,expected", CASES, ids=[f"{n}:{m}" for n, m, _ in CASES]
)
def test_catalog_expectation(name, model, expected):
    history = CATALOG[name].history
    result = check(history, model)
    assert result.allowed == expected, (
        f"{name} under {model}: paper/catalog expects "
        f"{'allowed' if expected else 'rejected'}, measured "
        f"{'allowed' if result.allowed else 'rejected'} ({result.reason})"
    )


def test_paper_figures_present():
    figs = paper_figures()
    assert len(figs) == 4
    assert [f.name for f in figs] == [
        "fig1-sb",
        "fig2-pc-not-tso",
        "fig3-pram-not-tso",
        "fig4-causal-not-tso",
    ]


def test_all_catalog_histories_have_distinct_write_values():
    for name in catalog_names():
        assert get_test(name).history.has_distinct_write_values(), name


def test_all_catalog_entries_have_sources():
    for name in catalog_names():
        assert get_test(name).source, f"{name} lacks a provenance note"


def test_get_test_unknown_raises():
    with pytest.raises(KeyError):
        get_test("no-such-test")
