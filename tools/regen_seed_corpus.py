"""Regenerate ``tests/diff/data/seed_corpus.jsonl``.

Run after an *intended* semantics change::

    PYTHONPATH=src python tools/regen_seed_corpus.py [--jobs N]

Harvests one minimal, verdict-locked separating witness per
:data:`repro.diff.fuzz.SEPARATOR_PATTERNS` entry from a deterministic
fuzz campaign over the full spec-backed panel, then falls back to the
speclint family probes for any pattern the random strata did not hit
(the partition-arity separations need four-location store buffering,
which random sampling produces rarely).
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.checking.models import MODELS, model_names
from repro.diff import DiscrepancyCorpus, FuzzConfig, harvest_fixtures
from repro.diff.fuzz import SEPARATOR_PATTERNS
from repro.diff.oracles import (
    agreed_verdicts,
    find_discrepancies,
    panel_verdicts,
)
from repro.diff.shrink import shrink_history
from repro.litmus import parse_history

CORPUS = Path(__file__).resolve().parent.parent / "tests/diff/data/seed_corpus.jsonl"

#: Hand-built fallback witnesses (the speclint family probes), tried for
#: any pattern the fuzz harvest missed.
_FALLBACK_PROBES: tuple[str, ...] = (
    "p: w(x)1 r(x)0",
    "p: w(x)1 w(x)2 | q: r(x)1 r(x)2 r(x)1",
    "p: w(x)1 w(y)1 | q: r(y)1 r(x)0 r(x)1",
    "p: r(x)2 w(x)2",
    "p: w(x)1 r(z)0 | q: w(z)1 r(x)0 | s: w(y)1",
    "p: w(u)1 r(z)0 | q: w(z)1 r(u)0 | s: w(x)1 | t: w(y)1",
    # Labeled probes: the RC disciplines only separate on labeled
    # operations, which the random strata never emit.
    "p: w*(x)1 r*(y)0 | q: w*(y)1 r*(x)0",
    "p: w(x)1 w*(s)1 | q: r*(s)1 r(x)0",
)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--jobs", type=int, default=1)
    ap.add_argument("--count", type=int, default=600)
    ap.add_argument("--seed", type=int, default=0)
    args = ap.parse_args()

    panel = tuple(n for n in model_names() if MODELS[n].spec is not None)
    cfg = FuzzConfig(seed=args.seed, count=args.count, models=panel)
    engine = None
    if args.jobs > 1:
        from repro.engine import CheckEngine

        engine = CheckEngine(jobs=args.jobs)
    fixtures = harvest_fixtures(cfg, engine=engine)
    found = {key for key, _, _, _ in fixtures}

    missing = [
        (label, admit, deny)
        for label, admit, deny in SEPARATOR_PATTERNS
        if f"separator:{label}" not in found
    ]
    for label, admit, deny in missing:
        for text in _FALLBACK_PROBES:
            history = parse_history(text)
            verdicts = panel_verdicts(history, panel)
            if find_discrepancies(verdicts):
                continue
            agreed = agreed_verdicts(verdicts)
            if not (agreed[admit] and not agreed[deny]):
                continue

            def separates(candidate):
                p = panel_verdicts(candidate, panel)
                if find_discrepancies(p):
                    return None
                a = agreed_verdicts(p)
                return (a[admit] and not a[deny]) or None

            shrunk = shrink_history(history, separates)
            expected = agreed_verdicts(panel_verdicts(shrunk.history, panel))
            fixtures.append(
                (
                    f"separator:{label}",
                    shrunk.history,
                    expected,
                    "hand-built family probe (speclint); "
                    f"shrunk by {shrunk.steps} deletion(s)",
                )
            )
            break
        else:
            print(f"NO WITNESS for {label}")
            return 1

    CORPUS.unlink(missing_ok=True)
    with DiscrepancyCorpus(CORPUS) as corpus:
        corpus.append_run_header(
            {**cfg.describe(), "purpose": "seed regression corpus"}
        )
        for key, history, expected, origin in sorted(fixtures):
            corpus.append_litmus(key, history, expected, origin=origin)
    print(f"wrote {len(fixtures)} fixtures to {CORPUS}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
