#!/usr/bin/env python3
"""The Section 5 experiment as a script: Bakery vs the memory models.

Runs Lamport's Bakery algorithm (paper Figure 6) — plus Peterson and a
test-and-set spinlock as baselines — on the simulated machines, counting
mutual-exclusion violations over many random schedules and under the
adversarial delivery-delaying scheduler.

Expected shape (the paper's result):
  * every algorithm is safe on the SC machine and on RC_sc;
  * Bakery and Peterson break on RC_pc (and on the raw weak machines);
  * the spinlock survives everywhere, because its RMW is atomic at the
    lock's serialization point.

Run:  python examples/bakery_showdown.py [runs]
"""

import sys

from repro.machines import PRAMMachine, RCMachine, SCMachine, TSOMachine
from repro.programs import DelayDeliveriesScheduler, RandomScheduler, run
from repro.programs.mutex import bakery_program, peterson_program, spinlock_program

MACHINES = {
    "SC": lambda: SCMachine(("p0", "p1")),
    "TSO": lambda: TSOMachine(("p0", "p1")),
    "PRAM": lambda: PRAMMachine(("p0", "p1")),
    "RC_sc": lambda: RCMachine(("p0", "p1"), labeled_mode="sc"),
    "RC_pc": lambda: RCMachine(("p0", "p1"), labeled_mode="pc"),
}

#: Label sync operations only on the RC machines (they enforce the
#: labeled/ordinary location discipline); elsewhere run unlabeled.
LABELED = {"RC_sc": True, "RC_pc": True}

ALGORITHMS = {
    "bakery": bakery_program,
    "peterson": lambda n, **kw: peterson_program(**kw),
    "spinlock": spinlock_program,
}


def violation_stats(machine_factory, program, runs: int) -> tuple[int, bool]:
    """(random-schedule violations, adversarial violation?) for a program."""
    random_violations = 0
    for seed in range(runs):
        result = run(machine_factory(), program, RandomScheduler(seed), max_steps=5000)
        if result.mutex_violation:
            random_violations += 1
    adversarial = run(
        machine_factory(), program, DelayDeliveriesScheduler(), max_steps=5000
    ).mutex_violation
    return random_violations, adversarial


def main() -> None:
    runs = int(sys.argv[1]) if len(sys.argv) > 1 else 100
    print(f"{runs} random schedules per cell; 'adv' = adversarial scheduler\n")
    header = f"{'algorithm':10s} " + "".join(f"{m:>16s}" for m in MACHINES)
    print(header)
    for algo_name, make_program in ALGORITHMS.items():
        cells = [f"{algo_name:10s} "]
        for machine_name, machine_factory in MACHINES.items():
            labeled = LABELED.get(machine_name, False)
            program = make_program(2, labeled=labeled)
            random_violations, adversarial = violation_stats(
                machine_factory, program, runs
            )
            cell = f"{random_violations}/{runs}" + (" adv!" if adversarial else "")
            cells.append(f"{cell:>16s}")
        print("".join(cells))
    print(
        "\nReading: zero everywhere on SC/RC_sc, nonzero for the read/write"
        "\nalgorithms on RC_pc and the raw weak machines — the paper's"
        "\nSection 5 separation of RC_sc from RC_pc."
    )


if __name__ == "__main__":
    main()
