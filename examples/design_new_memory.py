#!/usr/bin/env python3
"""Design a new memory from the paper's three parameters (Section 7).

The paper's concluding remark suggests building new memories by
recombining the characterization parameters — "a mutual consistency
condition that requires coherence can be added to causal memory".  This
script does exactly that with the declarative spec API, then situates the
new memory empirically: which catalog histories it allows, and where it
falls relative to the established models.

Run:  python examples/design_new_memory.py
"""

from repro.checking import check, check_with_spec
from repro.lattice import (
    HistorySpace,
    canonical_key,
    classify_histories,
    enumerate_histories,
)
from repro.litmus import CATALOG
from repro.spec import (
    CAUSAL,
    MemoryModelSpec,
    MutualConsistency,
    OperationSet,
)


def build_spec() -> MemoryModelSpec:
    """Causal memory + coherence, assembled from the three parameters."""
    return MemoryModelSpec(
        name="MyCoherentCausal",
        operation_set=OperationSet.REMOTE_WRITES,      # parameter 1: δ_p = w
        mutual_consistency=MutualConsistency.COHERENCE,  # parameter 2
        ordering=CAUSAL,                                # parameter 3: (po ∪ wb)+
        description="Example of Section 7's recipe, built by this script.",
    )


def main() -> None:
    spec = build_spec()
    print(f"new memory: {spec}\n")

    print("verdicts on the paper's figures (vs. plain causal memory):")
    for name in ("fig1-sb", "fig2-pc-not-tso", "fig3-pram-not-tso", "fig4-causal-not-tso", "mp", "corr"):
        h = CATALOG[name].history
        mine = check_with_spec(spec, h).allowed
        plain = check(h, "Causal").allowed
        marker = "  <- coherence bites" if mine != plain else ""
        print(f"  {name:22s} new={str(mine):5s} causal={str(plain):5s}{marker}")

    # Locate it in the lattice over the canonical 2x2 space.
    space = HistorySpace(procs=2, ops_per_proc=2)
    seen, histories = set(), []
    for h in enumerate_histories(space):
        k = canonical_key(h)
        if k not in seen:
            seen.add(k)
            histories.append(h)
    result = classify_histories(histories, ("SC", "TSO", "Causal", "Coherence", "PRAM"))
    mine_allowed = {
        i for i, h in enumerate(histories) if check_with_spec(spec, h).allowed
    }
    print(f"\nover {len(histories)} canonical histories it allows {len(mine_allowed)}:")
    for other in result.models:
        below = mine_allowed <= result.allowed[other]
        above = result.allowed[other] <= mine_allowed
        relation = {
            (True, True): "equivalent to",
            (True, False): "strictly stronger than" if mine_allowed != result.allowed[other] else "within",
            (False, True): "strictly weaker than",
            (False, False): "incomparable with",
        }[(below, above)]
        print(f"  {relation:24s} {other}")


if __name__ == "__main__":
    main()
