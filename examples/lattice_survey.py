#!/usr/bin/env python3
"""Reproduce Figure 5: classify a history space, draw the memory lattice.

Enumerates every canonical history of a small processors × operations
grid, runs all the paper's checkers over it, verifies the containments of
Figure 5, and prints the measured Hasse diagram (plus a Graphviz DOT dump
you can render with ``dot -Tpng``).

Run:  python examples/lattice_survey.py [procs] [ops_per_proc]

Defaults to the 2×2 grid (210 canonical histories, a couple of seconds).
The 2×3 grid takes minutes — pure-Python checking is the cost of full
generality, as DESIGN.md discusses.
"""

import sys

from repro.analysis import Timer, format_counts
from repro.lattice import (
    FIGURE5_EDGES,
    HistorySpace,
    canonical_key,
    classify_histories,
    containment_violations,
    empirical_hasse,
    enumerate_histories,
    paper_hasse,
    separating_witnesses,
)
from repro.litmus import format_history
from repro.viz import lattice_to_dot, render_lattice

MODELS = ("SC", "TSO", "PC", "Causal", "PRAM", "Coherence")


def main() -> None:
    procs = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    ops = int(sys.argv[2]) if len(sys.argv) > 2 else 2
    space = HistorySpace(procs=procs, ops_per_proc=ops)

    with Timer() as t_enum:
        seen, histories = set(), []
        for h in enumerate_histories(space):
            key = canonical_key(h)
            if key not in seen:
                seen.add(key)
                histories.append(h)
    print(
        f"{procs} procs x {ops} ops: {len(histories)} canonical histories "
        f"(enumerated in {t_enum.elapsed:.2f}s)"
    )

    with Timer() as t_classify:
        result = classify_histories(histories, MODELS)
    print(f"classified under {len(MODELS)} models in {t_classify.elapsed:.2f}s\n")

    print("allowed-history counts (the Venn-region sizes of Figure 5):")
    print(format_counts(result.counts(), len(histories)))

    violations = containment_violations(result, FIGURE5_EDGES)
    print(f"\nFigure 5 containment violations: {len(violations)} (expect 0)")

    print("\nmeasured lattice (strongest at top):")
    measured = empirical_hasse(result)
    print(render_lattice(measured))
    agrees = set(measured.edges()) >= set(paper_hasse().edges())
    print(f"\ncontains the paper's Figure 5 edges: {agrees}")

    print("\nseparating witnesses found inside the space:")
    for (a, b), w in separating_witnesses(result, FIGURE5_EDGES).items():
        shown = format_history(w, oneline=True) if w else "(none in this space)"
        print(f"  {a} < {b}: {shown}")

    print("\nGraphviz DOT of the measured lattice:\n")
    print(lattice_to_dot(measured))


if __name__ == "__main__":
    main()
