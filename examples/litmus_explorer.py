#!/usr/bin/env python3
"""Explore litmus tests: classify the catalog, or any history you type.

Without arguments: sweeps the built-in catalog (the paper's Figures 1-4
plus classic shapes) across every registered memory model and prints the
verdict matrix, flagging any divergence from the catalog's expectations.

With an argument: classifies your history, e.g.

    python examples/litmus_explorer.py "p: w(x)1 r(y)0 | q: w(y)1 r(x)0"

Notation: ``w(loc)v`` write, ``r(loc)v`` read returning v, ``u(loc)a->b``
atomic read-modify-write, ``*`` suffix on the kind marks a labeled
(synchronization) operation; rows are ``proc: ops`` separated by ``|``.
"""

import sys

from repro.checking import MODELS, check
from repro.litmus import CATALOG, parse_history
from repro.viz import render_history, render_views

SWEEP_MODELS = (
    "SC", "TSO", "TSO-axiomatic", "PC", "PC-G", "Causal",
    "Coherence", "CoherentCausal", "PRAM",
)


def classify_one(text: str) -> None:
    history = parse_history(text)
    print(render_history(history, title="History:"))
    print("\nVerdicts:")
    witness = None
    for model in SWEEP_MODELS:
        try:
            result = check(history, model)
        except Exception as exc:  # e.g. axiomatic TSO on RMW histories
            print(f"  {model:16s} (not applicable: {exc})")
            continue
        print(f"  {model:16s} {'allowed' if result.allowed else 'NOT allowed'}")
        if result.allowed and result.views and witness is None:
            witness = result
    if witness is not None:
        print(f"\nWitness views from the {witness.model} checker:")
        print(render_views(witness.views))
    from repro.analysis.spectrum import strength_frontier

    frontier = strength_frontier(history)
    if frontier:
        print(f"\nStrength frontier (strongest models allowing it): "
              f"{', '.join(frontier)}")


def sweep_catalog() -> None:
    print(
        f"{'test':22s}" + "".join(f"{m:>9s}" for m in SWEEP_MODELS)
        + "   (Y allowed, N rejected, ! differs from catalog)"
    )
    for name, test in CATALOG.items():
        history = test.history
        cells = [f"{name:22s}"]
        for model in SWEEP_MODELS:
            try:
                got = check(history, model).allowed
            except Exception:
                cells.append(f"{'-':>9s}")
                continue
            mark = "Y" if got else "N"
            expected = test.expected.get(model)
            if expected is not None and expected != got:
                mark += "!"
            cells.append(f"{mark:>9s}")
        print("".join(cells))


def main() -> None:
    if len(sys.argv) > 1:
        classify_one(" ".join(sys.argv[1:]))
    else:
        sweep_catalog()


if __name__ == "__main__":
    main()
