#!/usr/bin/env python3
"""Which memory preserves which programming idiom?

Runs the classic DSM communication skeletons (producer/consumer hand-off,
barrier, test-and-set work queue) across the simulated machines and
reports whether each idiom's correctness condition survived — the
application-level face of the paper's consistency spectrum:

* the flag hand-off needs write-order preservation: safe on SC/TSO/PRAM/
  causal machines, leaky on the coherent-only machine;
* the read/write barrier likewise;
* the RMW-based work queue is safe everywhere (atomic operations
  serialize at the location regardless of the memory's weakness —
  the paper's footnote 4 in action).

Run:  python examples/workloads_demo.py [runs]
"""

import sys

from repro.machines import (
    CausalMachine,
    CoherentMachine,
    PRAMMachine,
    SCMachine,
    TSOMachine,
)
from repro.programs import RandomScheduler, run
from repro.programs.workloads import (
    barrier_program,
    producer_consumer,
    stale_reads,
    work_queue,
)

MACHINES = {
    "SC": SCMachine,
    "TSO": TSOMachine,
    "PRAM": PRAMMachine,
    "Causal": CausalMachine,
    "Coherent": CoherentMachine,
}


def producer_consumer_stales(machine_cls, runs: int) -> int:
    stale = 0
    for seed in range(runs):
        m = machine_cls(("prod", "cons"))
        result = run(m, producer_consumer(3), RandomScheduler(seed), max_steps=4000)
        if result.completed:
            stale += stale_reads(result.history, 3)
    return stale


def barrier_stales(machine_cls, runs: int) -> int:
    stale = 0
    for seed in range(runs):
        m = machine_cls(("p0", "p1"))
        result = run(m, barrier_program(2), RandomScheduler(seed), max_steps=20_000)
        if not result.completed:
            continue
        for op in result.history.operations:
            if op.is_read and op.location.startswith("pre["):
                j = int(op.location[4:-1])
                if op.value_read != 10 + j:
                    stale += 1
    return stale


def queue_collisions(machine_cls, runs: int) -> int:
    collisions = 0
    for seed in range(runs):
        m = machine_cls(("w0", "w1"))
        result = run(m, work_queue(2, 4), RandomScheduler(seed), max_steps=5000)
        for i in range(4):
            winners = [
                op
                for op in result.history.operations
                if op.kind.value == "u"
                and op.location == f"claim[{i}]"
                and op.read_value == 0
            ]
            if len(winners) != 1:
                collisions += 1
    return collisions


def main() -> None:
    runs = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    print(f"{runs} random schedules per cell (counts of correctness breaches)\n")
    print(f"{'machine':10s} {'prod/cons stale':>16s} {'barrier stale':>14s} {'queue collide':>14s}")
    for name, cls in MACHINES.items():
        pc = producer_consumer_stales(cls, runs)
        ba = barrier_stales(cls, runs)
        qc = queue_collisions(cls, runs)
        print(f"{name:10s} {pc:16d} {ba:14d} {qc:14d}")
    print(
        "\nReading: zeros in the first two columns for every machine that"
        "\npreserves one processor's write order (SC, TSO, PRAM, causal);"
        "\nthe coherent-only machine leaks stale data.  The RMW work queue"
        "\nnever collides anywhere."
    )


if __name__ == "__main__":
    main()
