#!/usr/bin/env python3
"""The reproduction's one finding against the paper: TSO and forwarding.

Section 3.2 claims the view characterization of TSO "is equivalent to the
axiomatic definition" of SPARC.  This script walks the counterexample:

1. the store-buffer machine the paper itself describes (reads may return
   "the most recently written value from the local buffer") reaches the
   ``sb-fwd`` outcome;
2. the independent axiomatic checker (Sindhu et al.'s axioms, with the
   Value axiom's forwarding clause) allows that history;
3. the paper's view-based TSO rejects it — its partial program order
   keeps the same-location write→read edge that forwarding breaks;
4. disabling forwarding in the machine (reads drain the buffer first)
   removes the outcome, and that machine's traces always satisfy the
   paper's TSO: the paper characterized the buffer machine *without*
   forwarding.

Run:  python examples/tso_divergence.py
"""

from repro.checking import check_axiomatic_tso, check_tso
from repro.litmus import format_history
from repro.machines import TSOMachine


def drive(machine: TSOMachine) -> tuple:
    """Both processors write, read their own location, then the other's."""
    machine.write("p", "x", 1)
    machine.write("q", "y", 1)
    outcome = (
        machine.read("p", "x"),
        machine.read("p", "y"),
        machine.read("q", "y"),
        machine.read("q", "x"),
    )
    machine.drain()
    return outcome


def main() -> None:
    print("1. the paper's own operational machine (buffers WITH forwarding):")
    m = TSOMachine(("p", "q"), forwarding=True)
    outcome = drive(m)
    history = m.history()
    print(f"   outcome (p:x, p:y, q:y, q:x) = {outcome}")
    print("   " + format_history(history, oneline=True))

    axio = check_axiomatic_tso(history)
    view = check_tso(history)
    print(f"\n2. axiomatic TSO (Sindhu et al., independent implementation): "
          f"{'allowed' if axio.allowed else 'rejected'}")
    print(f"3. the paper's view-based TSO: "
          f"{'allowed' if view.allowed else 'REJECTED'}")
    print(f"   reason: {view.reason}")

    print("\n4. the machine WITHOUT forwarding (reads drain the buffer):")
    m2 = TSOMachine(("p", "q"), forwarding=False)
    outcome2 = drive(m2)
    history2 = m2.history()
    print(f"   outcome = {outcome2}  (the divergent (1, 0, 1, 0) is gone)")
    verdict = check_tso(history2)
    print(f"   paper's TSO on this trace: "
          f"{'allowed' if verdict.allowed else 'rejected'}")

    print(
        "\nConclusion: view-TSO ⊊ axiomatic-TSO; the gap is exactly store-"
        "\nbuffer forwarding, and the machine matching the paper's"
        "\ncharacterization is the buffer machine with forwarding disabled."
        "\n(Full sweep evidence: benchmarks/bench_tso_axiomatic.py.)"
    )


if __name__ == "__main__":
    main()
