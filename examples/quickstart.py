#!/usr/bin/env python3
"""Quickstart: define a history, ask which memories allow it, inspect views.

This walks the paper's Figure 1 (the store-buffering history) through the
framework's three core operations:

1. write a history in litmus notation,
2. classify it under the paper's memory models,
3. inspect the witness views a positive verdict carries.

Run:  python examples/quickstart.py
"""

from repro import classify, parse_history
from repro.checking import check_sc, check_tso
from repro.viz import render_history, render_views

# Figure 1 of the paper: each processor writes one location, then reads
# the other and sees the initial value 0.
FIG1 = """
p: w(x)1 r(y)0
q: w(y)1 r(x)0
"""


def main() -> None:
    history = parse_history(FIG1)
    print(render_history(history, title="Figure 1 (store buffering):"))

    # Which of the paper's memories allow this history?
    verdicts = classify(history)
    print("\nVerdicts:")
    for model, allowed in verdicts.items():
        print(f"  {model:8s} {'allowed' if allowed else 'NOT allowed'}")

    # SC rejects it: no single legal total order explains both reads.
    sc = check_sc(history)
    print(f"\nSC says: {sc.reason}")

    # TSO allows it, and the checker exhibits the paper's witness views:
    # each processor sees its own read early, and all views agree on the
    # order of the two writes (mutual consistency).
    tso = check_tso(history)
    print("\nTSO witness views (one legal sequence per processor):")
    print(render_views(tso.views))

    shared = [op.uid for op in tso.views["p"].writes_only]
    print(f"\nShared write order in every view: {shared}")


if __name__ == "__main__":
    main()
