"""E13 — the static pre-pass: soundness at scale and searches saved.

Three claims from the staticcheck acceptance criteria, asserted rather
than just measured:

* **Verdict equivalence** — over the full litmus catalog and 200 seeded
  random histories, every (history, spec) check returns byte-identical
  verdicts with the pre-pass on and off (the pre-pass is sound in both
  directions: a DENY means a forced contradiction, an ADMIT carries a
  constructed per-view witness).
* **Coverage** — the pre-pass alone decides at least 80% of the
  catalog x spec sweep without invoking the linear-extension search
  (and, as before, at least 25% of the catalog's DENY checks).
* **Witness validity** — every ADMIT the pre-pass issues is backed by
  witness views the kernel's own ``check_with_spec`` agrees with.

The timed groups compare an engine sweep with the pre-pass on and off;
the saved searches are the E13 speedup recorded in EXPERIMENTS.md.
"""

import time

import numpy as np
import pytest

from repro.analysis.random_histories import random_history
from repro.core.view import first_legality_violation
from repro.kernel.search import check_with_spec
from repro.litmus import CATALOG
from repro.spec import ALL_SPECS
from repro.staticcheck import prepass_check

CATALOG_HISTORIES = [t.history for t in CATALOG.values()]
RANDOM_HISTORIES = [
    random_history(np.random.default_rng(seed), procs=3, ops_per_proc=4)
    for seed in range(200)
]


def _verdict_fingerprint(spec, history, prepass):
    result = check_with_spec(spec, history, prepass=prepass)
    return (spec.name, result.allowed)


def test_prepass_verdicts_identical_on_catalog_and_random():
    """(pre-pass + kernel) == kernel alone, on every check."""
    for history in CATALOG_HISTORIES + RANDOM_HISTORIES:
        for spec in ALL_SPECS:
            plain = _verdict_fingerprint(spec, history, prepass=False)
            fast = _verdict_fingerprint(spec, history, prepass=True)
            assert plain == fast


def test_prepass_decides_a_quarter_of_catalog_denies():
    """≥ 25% of catalog DENY checks are decided without the search."""
    denies = decided = 0
    for history in CATALOG_HISTORIES:
        for spec in ALL_SPECS:
            if check_with_spec(spec, history).allowed:
                continue
            denies += 1
            if prepass_check(spec, history).decided:
                decided += 1
    fraction = decided / denies
    print(
        f"\ncatalog DENY checks: {denies}; decided by pre-pass alone: "
        f"{decided} ({fraction:.1%})"
    )
    assert fraction >= 0.25, (
        f"pre-pass coverage regressed: {fraction:.1%} of catalog DENY "
        "checks decided, need >= 25%"
    )


def test_prepass_decides_most_of_the_catalog_sweep():
    """≥ 80% of the catalog x spec sweep decided without the search.

    This is the admit-witness acceptance bar: with the ADMIT direction
    in play the pre-pass must settle the bulk of the sweep, abstaining
    only where attribution is ambiguous or a labeled discipline makes
    the serialization question genuinely hard.
    """
    total = decided = 0
    for history in CATALOG_HISTORIES:
        for spec in ALL_SPECS:
            if spec is None:
                continue
            total += 1
            if prepass_check(spec, history).decided:
                decided += 1
    fraction = decided / total
    print(
        f"\ncatalog sweep: {decided}/{total} checks ({fraction:.1%}) "
        "decided without search"
    )
    assert fraction >= 0.80, (
        f"pre-pass sweep coverage regressed: {fraction:.1%} decided, "
        "need >= 80%"
    )


def test_prepass_admits_carry_kernel_validated_witnesses():
    """Every pre-pass ADMIT's witness survives the kernel's scrutiny.

    The witness views must be legal serializations in their own right,
    and ``check_with_spec`` on the same (spec, history) must reach the
    same ADMIT — over the catalog and the random corpus.
    """
    admits = 0
    for history in CATALOG_HISTORIES + RANDOM_HISTORIES:
        for spec in ALL_SPECS:
            verdict = prepass_check(spec, history)
            if not (verdict.decided and verdict.allowed):
                continue
            admits += 1
            assert verdict.witness is not None
            for proc, view in verdict.witness.views.items():
                assert first_legality_violation(list(view)) is None, (
                    f"{spec.name}: illegal pre-pass witness view "
                    f"for {proc}"
                )
            assert check_with_spec(spec, history).allowed, (
                f"{spec.name}: pre-pass ADMIT contradicts the kernel"
            )
    print(f"\npre-pass ADMITs validated against the kernel: {admits}")
    assert admits > 0


def test_report_fraction_decided_without_search():
    """The headline E13 number: checks decided across catalog + random."""
    total = decided = 0
    for history in CATALOG_HISTORIES + RANDOM_HISTORIES:
        for spec in ALL_SPECS:
            total += 1
            if prepass_check(spec, history).decided:
                decided += 1
    print(
        f"\n{decided}/{total} checks ({decided / total:.1%}) decided "
        "without search (catalog + 200 random histories x "
        f"{len(ALL_SPECS)} specs)"
    )
    assert decided > 0


def _engine_sweep(prepass):
    from repro.engine import CheckEngine, SweepSpec

    spec = SweepSpec(
        source="random", models=("all",), procs=3, ops_per_proc=4, count=60
    )
    return CheckEngine(jobs=1, prepass=prepass).run(spec)


def test_sweep_speedup_with_prepass():
    """The engine-level effect on a DENY-heavy random sweep."""
    fast = _engine_sweep(prepass=True)
    slow = _engine_sweep(prepass=False)
    assert [r["models"] for r in fast.results] == [
        r["models"] for r in slow.results
    ]
    t_fast = min(
        _timed(lambda: _engine_sweep(prepass=True)) for _ in range(3)
    )
    t_slow = min(
        _timed(lambda: _engine_sweep(prepass=False)) for _ in range(3)
    )
    print(
        f"\nrandom sweep (60 histories x all models): "
        f"prepass {t_fast * 1e3:.1f}ms vs plain {t_slow * 1e3:.1f}ms "
        f"({t_slow / t_fast:.2f}x); "
        f"{fast.metrics.prepass_decided}/{fast.metrics.checks} checks "
        f"decided without search "
        f"({fast.metrics.prepass_admitted} admitted with a witness)"
    )


def _timed(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


@pytest.mark.parametrize("prepass", [True, False], ids=["prepass", "plain"])
def test_bench_random_sweep(benchmark, prepass):
    benchmark.group = "engine sweep: 60 random histories x all models"
    benchmark(lambda: _engine_sweep(prepass))
