"""E7 — Section 4's containment theorems, measured at scale.

The paper proves TSO ⊆ PC and asserts SC ⊂ TSO ⊂ {PC, Causal} ⊂ PRAM.
This experiment sweeps the claims over (a) the litmus catalog, (b) a
random-history sample, and (c) machine-generated traces, counting
agreement; a single violation anywhere fails the run.
"""

import numpy as np

from repro.analysis import machine_history, random_history
from repro.checking import check
from repro.lattice import FIGURE5_EDGES
from repro.litmus import CATALOG
from repro.machines import PCMachine, PRAMMachine, SCMachine

EXTRA_EDGES = (
    ("SC", "Coherence"),
    ("SC", "RC_sc"),
    ("RC_sc", "RC_pc"),
    ("SC", "CoherentCausal"),
    ("CoherentCausal", "Causal"),
)

N_RANDOM = 60


def _edge_violations(histories, edges):
    bad = 0
    for h in histories:
        verdicts = {}

        def v(m):
            if m not in verdicts:
                verdicts[m] = check(h, m).allowed
            return verdicts[m]

        for stronger, weaker in edges:
            if v(stronger) and not v(weaker):
                bad += 1
    return bad


def _random_histories():
    rng = np.random.default_rng(31)
    return [
        random_history(rng, procs=2, ops_per_proc=3, locations=("x", "y"))
        for _ in range(N_RANDOM)
    ]


def test_containment_claims(record_claims, benchmark):
    record_claims.set_title("E7 / Section 4: containment theorems")
    benchmark.group = "claims"

    def verify():
        catalog = [t.history for t in CATALOG.values()]
        random_hs = _random_histories()
        # Machine hierarchy: a stronger machine's traces satisfy weaker models.
        rng = np.random.default_rng(37)
        bad = 0
        for machine_cls, models in (
            (SCMachine, ("SC", "TSO", "PC", "Causal", "PRAM", "Coherence")),
            (PCMachine, ("PC", "Coherence", "PRAM")),
            (PRAMMachine, ("PRAM",)),
        ):
            for _ in range(10):
                h = machine_history(machine_cls(("p0", "p1")), rng, ops_per_proc=3)
                for model in models:
                    if not check(h, model).allowed:
                        bad += 1
        return [
            ("Figure 5 edges violated on catalog", 0,
             _edge_violations(catalog, FIGURE5_EDGES)),
            ("extra edges violated on catalog", 0,
             _edge_violations(catalog, EXTRA_EDGES)),
            (f"Figure 5 edges violated on {N_RANDOM} random histories", 0,
             _edge_violations(random_hs, FIGURE5_EDGES)),
            ("machine-trace model violations", 0, bad),
        ]

    for claim, paper, measured in benchmark.pedantic(verify, rounds=1, iterations=1):
        record_claims(claim, paper, measured)


def test_bench_containment_sweep_random(benchmark):
    histories = _random_histories()
    bad = benchmark(lambda: _edge_violations(histories, FIGURE5_EDGES))
    assert bad == 0


def test_bench_tso_subset_pc_proof_check(benchmark, fig1=None):
    """The TSO ⊆ PC direction on the catalog, as a repeatable measurement."""
    histories = [t.history for t in CATALOG.values()]

    def sweep():
        return sum(
            1
            for h in histories
            if check(h, "TSO").allowed and not check(h, "PC").allowed
        )

    assert benchmark(sweep) == 0
