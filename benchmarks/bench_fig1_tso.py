"""E1 — Figure 1: the store-buffering history is TSO but not SC.

Regenerates the paper's first worked example: the history where both
processors write then read the other's location and see 0.  Asserts the
verdict split, shows that the TSO store-buffer machine actually produces
the history, and benchmarks both checkers on it.
"""

from repro.checking import check_sc, check_tso
from repro.litmus import CATALOG
from repro.machines import TSOMachine
from repro.programs import Read, Write, explore

FIG1 = CATALOG["fig1-sb"]


def _iter_thread(ops):
    for op in ops:
        yield op


def _machine_reaches_fig1() -> bool:
    def setup():
        machine = TSOMachine(("p", "q"))
        return machine, {
            "p": lambda: _iter_thread([Write("x", 1), Read("y")]),
            "q": lambda: _iter_thread([Write("y", 1), Read("x")]),
        }

    target = FIG1.history
    return any(r.history == target for r in explore(setup, max_steps=40))


def test_fig1_claims(record_claims, benchmark):
    record_claims.set_title("E1 / Figure 1: SB history (TSO yes, SC no)")
    benchmark.group = "claims"

    def verify():
        h = FIG1.history
        return [
            ("allowed by TSO", True, check_tso(h).allowed),
            ("allowed by SC", False, check_sc(h).allowed),
            ("TSO machine reaches it", True, _machine_reaches_fig1()),
        ]

    for claim, paper, measured in benchmark.pedantic(verify, rounds=1, iterations=1):
        record_claims(claim, paper, measured)


def test_bench_tso_checker_on_fig1(benchmark):
    h = FIG1.history
    result = benchmark(lambda: check_tso(h))
    assert result.allowed


def test_bench_sc_checker_on_fig1(benchmark):
    h = FIG1.history
    result = benchmark(lambda: check_sc(h))
    assert not result.allowed


def test_bench_tso_machine_schedule_exploration(benchmark):
    result = benchmark(_machine_reaches_fig1)
    assert result
