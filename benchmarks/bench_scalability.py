"""E12 — scalability sweeps: how the effects grow with processor count.

The paper's title subject is *scalable* shared memories: the weak models
exist because strong consistency costs grow with the machine.  This
experiment measures the observable side of that trade on the simulators:

* Bakery on ``RC_pc``: the mutual-exclusion violation rate as the
  processor count grows (more participants → more stale-acquire windows);
* Bakery on ``RC_sc``: stays at zero at every size (the paper's
  guarantee);
* producer/consumer staleness on the coherent machine versus consumer
  count;
* machine throughput versus processor count (the substrate's own cost).

Shape expectations, not absolute numbers, are asserted (the bands note
pure-Python simulation is slow; rates are what transfer).
"""

import time

import pytest

from repro.machines import CoherentMachine, PRAMMachine, RCMachine
from repro.programs import RandomScheduler, Read, Write, run
from repro.programs.mutex import bakery_program

RUNS = 100


def bakery_violation_rate(mode: str, n: int, runs: int = RUNS) -> float:
    procs = tuple(f"p{i}" for i in range(n))
    violations = 0
    for seed in range(runs):
        result = run(
            RCMachine(procs, labeled_mode=mode),
            bakery_program(n),
            RandomScheduler(seed),
            max_steps=20_000,
        )
        if result.mutex_violation:
            violations += 1
    return violations / runs


def consumer_staleness_rate(n_consumers: int, runs: int = RUNS) -> float:
    """Fraction of flag-guarded data reads that observed stale data."""
    procs = ("prod",) + tuple(f"c{i}" for i in range(n_consumers))
    stale = total = 0
    for seed in range(runs):
        machine = CoherentMachine(procs)

        def producer():
            yield Write("data", 7)
            yield Write("flag", 1)

        def consumer():
            while True:
                f = yield Read("flag")
                if f == 1:
                    break
            yield Read("data")

        threads = {"prod": producer}
        threads.update({f"c{i}": consumer for i in range(n_consumers)})
        result = run(machine, threads, RandomScheduler(seed), max_steps=20_000)
        if not result.completed:
            continue
        for proc in procs[1:]:
            for op in result.history.ops_of(proc):
                if op.is_read and op.location == "data":
                    total += 1
                    if op.value_read != 7:
                        stale += 1
    return stale / total if total else 0.0


def test_scalability_claims(record_claims, benchmark):
    record_claims.set_title("E12 / scalability: effects vs processor count")
    benchmark.group = "claims"

    def verify():
        from repro.programs import DelayDeliveriesScheduler

        def adversarial_violates(n: int) -> bool:
            procs = tuple(f"p{i}" for i in range(n))
            result = run(
                RCMachine(procs, labeled_mode="pc"),
                bakery_program(n),
                DelayDeliveriesScheduler(),
                max_steps=50_000,
            )
            return result.mutex_violation

        pc_rates = {n: bakery_violation_rate("pc", n, runs=60) for n in (2, 3)}
        sc_rates = {n: bakery_violation_rate("sc", n, runs=60) for n in (2, 3)}
        staleness = {n: consumer_staleness_rate(n, runs=60) for n in (1, 3)}
        rows = [
            ("RC_sc Bakery violation rate, any n", 0.0,
             max(sc_rates.values())),
            # Boolean reachability via the adversarial scheduler (random
            # rates are a few percent and reported informationally below).
            ("RC_pc Bakery violates at n=2 (adversarial)", True,
             adversarial_violates(2)),
            ("RC_pc Bakery violates at n=3 (adversarial)", True,
             adversarial_violates(3)),
            ("coherent staleness present at 1 consumer", True,
             staleness[1] > 0),
            ("staleness persists at 3 consumers", True, staleness[3] > 0),
        ]
        return rows, pc_rates, staleness

    rows, pc_rates, staleness = benchmark.pedantic(verify, rounds=1, iterations=1)
    for claim, paper, measured in rows:
        record_claims(claim, paper, measured)
    print(f"\n   RC_pc Bakery violation rates: {pc_rates}")
    print(f"   coherent-machine staleness rates: {staleness}")


def test_violation_rate_vs_propagation_speed(record_claims, benchmark):
    """The series: Bakery violation rate falls monotonically as the
    propagation probability rises (the consistency-vs-performance dial)."""
    from repro.programs import BiasedScheduler

    record_claims.set_title("E12b / violation rate vs propagation probability")
    benchmark.group = "claims"

    def verify():
        rates = {}
        for p_machine in (0.05, 0.2, 0.5, 0.8):
            violations = 0
            for seed in range(80):
                result = run(
                    RCMachine(("p0", "p1"), labeled_mode="pc"),
                    bakery_program(2),
                    BiasedScheduler(seed, p_machine),
                    max_steps=8000,
                )
                violations += result.mutex_violation
            rates[p_machine] = violations / 80
        ordered = [rates[p] for p in (0.05, 0.2, 0.5, 0.8)]
        return [
            ("slowest propagation violates most", True,
             ordered[0] == max(ordered) and ordered[0] > 0),
            ("rate non-increasing along the sweep", True,
             all(a >= b for a, b in zip(ordered, ordered[1:]))),
        ], rates

    rows, rates = benchmark.pedantic(verify, rounds=1, iterations=1)
    for claim, paper, measured in rows:
        record_claims(claim, paper, measured)
    print("\n   violation rate by p_machine:")
    for p_machine, rate in rates.items():
        bar = "#" * int(rate * 50)
        print(f"   p={p_machine:<5} {rate:6.1%}  {bar}")


def test_engine_parallel_speedup(record_claims, benchmark):
    """E12c — the batch engine's own scalability: parallel sweep vs serial.

    Runs the exhaustive 2×2 space sweep (210 canonical histories × all 13
    models) through :class:`repro.engine.CheckEngine` at ``jobs=1`` and at
    ``jobs=min(4, cpus)``.  The >1.5× speedup claim is asserted only on
    multi-core hosts — a single-CPU container cannot speed anything up, so
    there the measured ratio is recorded informationally instead.  Result
    equality and a warm relation cache are asserted everywhere.
    """
    import os

    from repro.engine import CheckEngine, SweepSpec

    record_claims.set_title("E12c / engine: parallel sweep vs serial")
    benchmark.group = "claims"

    def verify():
        spec = SweepSpec(source="space", models=("all",))
        cpus = os.cpu_count() or 1
        jobs = min(4, max(2, cpus))

        t0 = time.perf_counter()
        serial = CheckEngine(jobs=1).run(spec)
        serial_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        parallel = CheckEngine(jobs=jobs).run(spec)
        parallel_s = time.perf_counter() - t0

        speedup = serial_s / parallel_s if parallel_s > 0 else 0.0
        rows = [
            ("engine results identical serial vs parallel", True,
             serial.results == parallel.results),
            ("relation cache hit rate > 0", True,
             parallel.metrics.cache_hit_rate > 0),
        ]
        if cpus >= 2:
            rows.append(
                (f"parallel speedup > 1.5x (jobs={jobs}, {cpus} CPUs)", True,
                 speedup > 1.5)
            )
        else:
            # One CPU: parallelism cannot win; record the ratio as data.
            rows.append(
                ("parallel speedup on 1 CPU (informational)", "-",
                 round(speedup, 2))
            )
        return rows, serial_s, parallel_s, jobs, serial.metrics.cache_hit_rate

    rows, serial_s, parallel_s, jobs, hit_rate = benchmark.pedantic(
        verify, rounds=1, iterations=1
    )
    for claim, paper, measured in rows:
        record_claims(claim, paper, measured)
    print(
        f"\n   2x2 space sweep (210 histories x 13 models): "
        f"serial {serial_s:.2f}s, jobs={jobs} {parallel_s:.2f}s "
        f"({serial_s / parallel_s:.2f}x); cache hit rate {hit_rate:.1%}"
    )


@pytest.mark.parametrize("n", [2, 4, 8])
def test_bench_pram_throughput_vs_procs(benchmark, n):
    benchmark.group = "PRAM machine throughput vs processors"
    procs = tuple(f"p{i}" for i in range(n))

    def workload():
        m = PRAMMachine(procs)
        for i in range(400):
            m.write(procs[i % n], f"x{i % 4}", i + 1)
        m.drain()
        return m.operation_count()

    assert benchmark(workload) == 400


@pytest.mark.parametrize("n", [2, 3, 4])
def test_bench_bakery_run_cost_vs_procs(benchmark, n):
    benchmark.group = "Bakery run cost vs processors (RC_sc)"
    procs = tuple(f"p{i}" for i in range(n))

    def workload():
        return run(
            RCMachine(procs, labeled_mode="sc"),
            bakery_program(n),
            RandomScheduler(3),
            max_steps=50_000,
        )

    result = benchmark(workload)
    assert result.completed and not result.mutex_violation