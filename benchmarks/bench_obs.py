"""E14 — the observability layer's no-op path is free.

``repro.obs`` promises that tracing is strictly opt-in: when no sink is
installed, ``check_with_spec`` runs the same search it ran before the
instrumentation landed.  Two properties keep that promise honest:

* the inner DFS is untouched — tracing uses a separate
  ``_dfs_find_traced`` copy, so the hot loop has no sink branch at all;
* every other emission sits behind an ``if sink is not None`` guard, and
  the public entry point resolves the process-global sink exactly once.

This benchmark measures what is measurable: the gated public entry point
(``check_with_spec``, which reads the process-global sink) against the
ungated internal driver called with no sink, interleaved over the full
catalog × spec sweep.  The delta is the entire cost of having the
observability layer installed but disabled, and the acceptance bar is
that it stays under 3%.  The cost of an *enabled* no-op sink
(``NullSink``) is also reported, informationally.
"""

import statistics
import time

from repro.kernel.search import SearchBudget, _check_with_spec_impl, check_with_spec
from repro.litmus import CATALOG
from repro.obs import NullSink, tracing
from repro.spec import ALL_SPECS

# Hoist the histories once: the kernel's history-plane cache is
# identity-keyed, so rebuilding them would benchmark cache misses.
HISTORIES = [t.history for t in CATALOG.values()]
PAIRS = [(spec, h) for h in HISTORIES for spec in ALL_SPECS]
ROUNDS = 31
OVERHEAD_BAR = 0.03


def _sweep_gated():
    n = 0
    for spec, h in PAIRS:
        if check_with_spec(spec, h, prepass=True).allowed:
            n += 1
    return n


def _sweep_ungated():
    n = 0
    for spec, h in PAIRS:
        if _check_with_spec_impl(spec, h, SearchBudget(), True, None).allowed:
            n += 1
    return n


def _sweep_null_sink():
    n = 0
    sink = NullSink()
    with tracing(sink):
        for spec, h in PAIRS:
            if check_with_spec(spec, h, prepass=True).allowed:
                n += 1
    return n


def _time(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _paired_ratio(variant, baseline, rounds=ROUNDS):
    """Median of per-round ``variant/baseline`` time ratios.

    Each round times both functions back to back, so frequency scaling
    and background load shift both sides of a ratio together; the median
    over many paired rounds is far more stable on a shared machine than
    comparing two independent best-of-N figures.  A warm-up round first
    so neither side pays one-time cache fills.
    """
    variant()
    baseline()
    ratios = [_time(variant) / _time(baseline) for _ in range(rounds)]
    return statistics.median(ratios), statistics.median(map(_time, [baseline] * 3))


def test_disabled_tracing_overhead_under_3pct():
    """The tentpole's acceptance bar: disabled tracing costs <3%."""
    # Identical verdicts first — a fast wrong answer is not an overhead figure.
    assert _sweep_gated() == _sweep_ungated() == _sweep_null_sink()
    ratio, base = _paired_ratio(_sweep_gated, _sweep_ungated)
    overhead = ratio - 1.0
    print(
        f"\ncatalog x {len(ALL_SPECS)} specs: ungated {base * 1e3:.1f}ms/round, "
        f"gated overhead {overhead * 100:+.2f}% (median of {ROUNDS} paired rounds)"
    )
    assert overhead < OVERHEAD_BAR, (
        f"disabled-tracing overhead {overhead * 100:.2f}% "
        f"exceeds {OVERHEAD_BAR * 100:.0f}%"
    )


def test_null_sink_enabled_cost_reported():
    """Informational: what an installed-but-discarding sink costs."""
    ratio, base = _paired_ratio(_sweep_null_sink, _sweep_ungated, rounds=5)
    print(
        f"\nNullSink enabled: baseline {base * 1e3:.1f}ms/round, "
        f"with sink {(ratio - 1) * 100:+.1f}%"
    )
    # No hard bar: an enabled sink is opt-in and allowed to cost something,
    # but it should not blow up the sweep wholesale.
    assert ratio < 3.0
