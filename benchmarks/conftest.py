"""Shared helpers for the experiment benchmarks.

Each ``bench_*.py`` file regenerates one of the paper's figures or claims
(experiment index in DESIGN.md) and doubles as a performance benchmark of
the code paths involved.  ``report`` prints paper-vs-measured rows that
EXPERIMENTS.md records verbatim.
"""

from __future__ import annotations

import pytest


def report(title: str, rows: list[tuple[str, str, str]]) -> None:
    """Print a paper-vs-measured table (shown under ``pytest -s``)."""
    width = max((len(r[0]) for r in rows), default=20)
    print(f"\n== {title}")
    print(f"   {'claim'.ljust(width)}  {'paper':>10}  {'measured':>10}")
    for claim, paper, measured in rows:
        flag = "" if paper == measured or paper == "-" else "  <-- MISMATCH"
        print(f"   {claim.ljust(width)}  {paper:>10}  {measured:>10}{flag}")


@pytest.fixture
def record_claims():
    """Collect (claim, paper, measured) rows; printed at teardown."""
    rows: list[tuple[str, str, str]] = []
    holder = {"title": "experiment"}

    def add(claim: str, paper, measured) -> None:
        rows.append((claim, str(paper), str(measured)))
        assert str(paper) in (str(measured), "-"), (
            f"paper-vs-measured mismatch for {claim!r}: "
            f"paper={paper} measured={measured}"
        )

    add.set_title = lambda t: holder.__setitem__("title", t)  # type: ignore[attr-defined]
    yield add
    report(holder["title"], rows)
