"""E10b — machine throughput and program-layer overhead.

Measures raw operation throughput of every machine (the substrate cost of
all operational experiments), delivery-event costs, and the end-to-end
cost of a scheduled Bakery run per machine class.
"""

import pytest

from repro.machines import (
    CausalMachine,
    CoherentMachine,
    PCMachine,
    PRAMMachine,
    RCMachine,
    SCMachine,
    TSOMachine,
)
from repro.programs import RandomScheduler, run
from repro.programs.mutex import bakery_program

MACHINES = {
    "SC": lambda procs: SCMachine(procs),
    "TSO": lambda procs: TSOMachine(procs),
    "PC": lambda procs: PCMachine(procs),
    "PRAM": lambda procs: PRAMMachine(procs),
    "Causal": lambda procs: CausalMachine(procs),
    "Coherent": lambda procs: CoherentMachine(procs),
}

PROCS = ("p0", "p1", "p2", "p3")
OPS = 250


@pytest.mark.parametrize("name", sorted(MACHINES))
def test_bench_write_read_throughput(benchmark, name):
    """1000 operations (alternating write/read) across 4 processors."""
    benchmark.group = "machine op throughput (1000 ops)"
    factory = MACHINES[name]

    def workload():
        m = factory(PROCS)
        for i in range(OPS):
            proc = PROCS[i % len(PROCS)]
            m.write(proc, f"x{i % 8}", i + 1)
            m.read(proc, f"x{(i + 3) % 8}")
            m.read(proc, f"x{i % 8}")
            m.write(proc, f"y{i % 4}", i + 1000)
        return m.operation_count()

    assert benchmark(workload) == OPS * 4


@pytest.mark.parametrize("name", ["PRAM", "Causal", "PC", "Coherent"])
def test_bench_delivery_drain(benchmark, name):
    """Cost of draining the in-flight updates of a write burst."""
    benchmark.group = "delivery drain (200 writes, 4 procs)"
    factory = MACHINES[name]

    def workload():
        m = factory(PROCS)
        for i in range(200):
            m.write(PROCS[i % len(PROCS)], f"x{i % 8}", i + 1)
        m.drain()
        return m.quiescent()

    assert benchmark(workload)


@pytest.mark.parametrize(
    "mode", ["sc", "pc"], ids=["RC_sc-machine", "RC_pc-machine"]
)
def test_bench_bakery_end_to_end(benchmark, mode):
    benchmark.group = "Bakery run end to end (2 procs)"

    def workload():
        return run(
            RCMachine(("p0", "p1"), labeled_mode=mode),
            bakery_program(2),
            RandomScheduler(5),
            max_steps=6000,
        )

    result = benchmark(workload)
    assert result.completed


def test_bench_scheduler_overhead(benchmark):
    """Program layer on the cheapest machine isolates runner overhead."""
    benchmark.group = "runner overhead"
    from repro.programs import Read, Write

    def thread():
        for i in range(100):
            yield Write("x", i + 1)
            yield Read("x")

    def workload():
        m = SCMachine(("p0", "p1"))
        return run(
            m,
            {"p0": thread, "p1": thread},
            RandomScheduler(9),
            max_steps=10_000,
        )

    result = benchmark(workload)
    assert result.completed
