"""E11 — constraint kernel vs the pre-kernel generic solver.

The kernel refactor's performance claim: compiling a spec's three
parameters onto the bitmask plane (and sharing the history-level plane
across specs) makes the generic solver at least twice as fast on the
litmus catalog.  The frozen legacy solver is kept verbatim in
``repro.checking._legacy_solver`` as the baseline, so the comparison
stays honest as the kernel evolves.
"""

import time

import pytest

from repro.checking._legacy_solver import legacy_check_with_spec
from repro.kernel.search import check_with_spec
from repro.litmus import CATALOG
from repro.spec import ALL_SPECS

# Hoist the histories once: ``LitmusTest.history`` builds a fresh object
# per access, and the kernel's history-plane cache is identity-keyed.
HISTORIES = [t.history for t in CATALOG.values()]
PAIRS = [(spec, h) for h in HISTORIES for spec in ALL_SPECS]


def _sweep(check):
    verdicts = 0
    for spec, h in PAIRS:
        if check(spec, h).allowed:
            verdicts += 1
    return verdicts


def _best_of(fn, reps):
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_kernel_speedup_over_legacy_on_catalog():
    """The acceptance bar: ≥2× on the full catalog × spec sweep."""
    # Same verdicts first — a fast wrong answer is not a speedup.
    assert _sweep(check_with_spec) == _sweep(legacy_check_with_spec)
    legacy = _best_of(lambda: _sweep(legacy_check_with_spec), 5)
    kernel = _best_of(lambda: _sweep(check_with_spec), 5)
    speedup = legacy / kernel
    print(
        f"\ncatalog x {len(ALL_SPECS)} specs: "
        f"legacy {legacy * 1e3:.1f}ms, kernel {kernel * 1e3:.1f}ms, "
        f"speedup {speedup:.2f}x"
    )
    assert speedup >= 2.0, f"kernel speedup regressed: {speedup:.2f}x < 2x"


@pytest.mark.parametrize("which", ["legacy", "kernel"])
def test_bench_generic_solver_catalog(benchmark, which):
    benchmark.group = "generic solver: catalog x all specs"
    check = legacy_check_with_spec if which == "legacy" else check_with_spec
    benchmark(lambda: _sweep(check))


@pytest.mark.parametrize(
    "name", ["fig1-sb", "iriw", "fig4-causal-not-tso", "2+2w-observed"]
)
@pytest.mark.parametrize("which", ["legacy", "kernel"])
def test_bench_generic_solver_single(benchmark, which, name):
    benchmark.group = f"generic solver: {name}"
    check = legacy_check_with_spec if which == "legacy" else check_with_spec
    h = CATALOG[name].history

    def one():
        return [check(spec, h).allowed for spec in ALL_SPECS]

    benchmark(one)
