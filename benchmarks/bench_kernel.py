"""E11 — constraint kernel vs the pre-kernel generic solver.

The kernel refactor's performance claim: compiling a spec's three
parameters onto the bitmask plane (and sharing the history-level plane
across specs) makes the generic solver at least twice as fast on the
litmus catalog.  The frozen legacy solver is kept verbatim in
``repro.checking._legacy_solver`` as the baseline, so the comparison
stays honest as the kernel evolves.
"""

import time

import pytest

from repro.checking._legacy_solver import legacy_check_with_spec
from repro.kernel.search import check_with_spec
from repro.litmus import CATALOG
from repro.spec import ALL_SPECS

# Hoist the histories once: ``LitmusTest.history`` builds a fresh object
# per access, and the kernel's history-plane cache is identity-keyed.
HISTORIES = [t.history for t in CATALOG.values()]
PAIRS = [(spec, h) for h in HISTORIES for spec in ALL_SPECS]


def _sweep(check):
    verdicts = 0
    for spec, h in PAIRS:
        if check(spec, h).allowed:
            verdicts += 1
    return verdicts


def _best_of(fn, reps):
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_kernel_speedup_over_legacy_on_catalog():
    """The acceptance bar: ≥2× on the full catalog × spec sweep."""
    # Same verdicts first — a fast wrong answer is not a speedup.
    assert _sweep(check_with_spec) == _sweep(legacy_check_with_spec)
    legacy = _best_of(lambda: _sweep(legacy_check_with_spec), 5)
    kernel = _best_of(lambda: _sweep(check_with_spec), 5)
    speedup = legacy / kernel
    print(
        f"\ncatalog x {len(ALL_SPECS)} specs: "
        f"legacy {legacy * 1e3:.1f}ms, kernel {kernel * 1e3:.1f}ms, "
        f"speedup {speedup:.2f}x"
    )
    assert speedup >= 2.0, f"kernel speedup regressed: {speedup:.2f}x < 2x"


@pytest.mark.parametrize("which", ["legacy", "kernel"])
def test_bench_generic_solver_catalog(benchmark, which):
    benchmark.group = "generic solver: catalog x all specs"
    check = legacy_check_with_spec if which == "legacy" else check_with_spec
    benchmark(lambda: _sweep(check))


@pytest.mark.parametrize(
    "name", ["fig1-sb", "iriw", "fig4-causal-not-tso", "2+2w-observed"]
)
@pytest.mark.parametrize("which", ["legacy", "kernel"])
def test_bench_generic_solver_single(benchmark, which, name):
    benchmark.group = f"generic solver: {name}"
    check = legacy_check_with_spec if which == "legacy" else check_with_spec
    h = CATALOG[name].history

    def one():
        return [check(spec, h).allowed for spec in ALL_SPECS]

    benchmark(one)


# -- E17: the numpy mask backend vs the pure-Python reference ------------------
#
# The backend claim is about the *batched frontier gate* — the operation
# the numpy backend exists for — measured on each backend's native
# representation: the reference gates one candidate's int-mask rows at a
# time (the sequential driver's shape), the numpy backend gates a whole
# packed (B, n) word matrix per call (the batched driver's shape, and
# exactly the form the shared-memory arena stores).  The workload is not
# synthetic: it is every gate call the real catalog sweep makes, recorded
# via RecordingBackend and tiled up to frontier scale.  End-to-end check
# time is dominated by candidate enumeration and the per-view search,
# which are identical across backends — as are all verdicts and
# witnesses, asserted below over the full catalog x model x prepass
# matrix.

import os

from repro.core.serialization import check_result_to_dict
from repro.kernel.backend import RecordingBackend, get_backend, use_backend
from repro.litmus import format_history

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

#: Tiled frontier size per universe-width group (rows).
FRONTIER_ROWS = 1024 if QUICK else 4096


def _harvest_gate_workload():
    """Every (masks, n) gate call of one real catalog x spec sweep."""
    recorder = RecordingBackend(get_backend("python"))
    with use_backend(recorder):
        for spec, h in PAIRS:
            check_with_spec(spec, h)
    by_n: dict[int, list[list[int]]] = {}
    for batch, n in recorder.gate_calls:
        by_n.setdefault(n, []).extend(batch)
    return by_n


def _tile(rows, target):
    out = list(rows)
    while len(out) < target:
        out.extend(rows)
    return out[:target]


def test_numpy_backend_gate_speedup():
    """The acceptance bar: ≥10× on the catalog sweep's gate workload."""
    numpy_backend = get_backend("numpy")
    python_backend = get_backend("python")
    by_n = _harvest_gate_workload()
    workload = {
        n: _tile(rows, FRONTIER_ROWS) for n, rows in by_n.items() if rows
    }
    packed = {
        n: numpy_backend.pack(rows, n) for n, rows in workload.items()
    }

    # Identical gates first — a fast wrong answer is not a speedup.
    for n, rows in workload.items():
        assert numpy_backend.gate_batch(rows, n) == [
            python_backend.gate(r, n) for r in rows
        ]

    def python_sweep():
        for n, rows in workload.items():
            for r in rows:
                python_backend.gate(r, n)

    def numpy_sweep():
        for n, arr in packed.items():
            numpy_backend.gate_packed(arr, n)

    reps = 3 if QUICK else 5
    python_s = _best_of(python_sweep, reps)
    numpy_s = _best_of(numpy_sweep, reps)
    speedup = python_s / numpy_s
    total = sum(len(rows) for rows in workload.values())
    print(
        f"\ngate workload ({total} rows, widths {sorted(workload)}): "
        f"python {python_s * 1e3:.1f}ms, numpy {numpy_s * 1e3:.2f}ms, "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= 10.0, f"numpy backend speedup: {speedup:.1f}x < 10x"


def test_backend_verdicts_and_witnesses_byte_identical():
    """python ≡ numpy: full results on every catalog x model x prepass."""
    pairs = PAIRS[:: 4] if QUICK else PAIRS
    for prepass in (False, True):
        for spec, h in pairs:
            with use_backend("python"):
                ref = check_result_to_dict(check_with_spec(spec, h, prepass=prepass))
            with use_backend("numpy"):
                got = check_result_to_dict(check_with_spec(spec, h, prepass=prepass))
            assert ref == got, (
                f"backend divergence on {format_history(h)!r} under "
                f"{spec.name} (prepass={prepass})"
            )
