"""E4 — Figure 4: a history allowed by causal memory but not by TSO.

The paper's four-location example, including its closing observation:
once r has returned z=1, causality forces its later read of y to return 1
(the y-stale variant is PRAM-only), while PRAM would also allow y=0.
The vector-clock causal machine reaches the history operationally.
"""

from repro.checking import check_causal, check_pram, check_tso
from repro.litmus import CATALOG, parse_history
from repro.machines import CausalMachine

FIG4 = CATALOG["fig4-causal-not-tso"]

#: The paper's "in PRAM, r need not return 1 for y" variant.
FIG4_STALE_Y = (
    "p: w(x)1 w(y)1 | q: r(y)1 w(z)1 r(x)2 | r: w(x)2 r(x)1 r(z)1 r(y)0"
)


def _machine_reaches_fig4() -> bool:
    """Drive the causal machine through the schedule realizing Figure 4.

    r writes x=2 concurrently with p's writes; q sees p's writes, writes
    z; r first overwrites its x with p's (older at r, newer nowhere — no
    mutual consistency), then pulls in y and z causally; finally q sees
    r's x=2.
    """
    m = CausalMachine(("p", "q", "r"))
    m.write("r", "x", 2)
    m.write("p", "x", 1)
    m.write("p", "y", 1)
    m.fire(("apply", "q", "p", 1))  # x=1 at q
    m.fire(("apply", "q", "p", 2))  # y=1 at q
    assert m.read("q", "y") == 1
    m.write("q", "z", 1)
    m.fire(("apply", "r", "p", 1))  # x=1 at r (after its own x=2)
    assert m.read("r", "x") == 1
    m.fire(("apply", "r", "p", 2))  # y=1 at r (dependency of z)
    m.fire(("apply", "r", "q", 1))  # z=1 at r
    assert m.read("r", "z") == 1
    assert m.read("r", "y") == 1
    m.fire(("apply", "q", "r", 1))  # x=2 at q
    assert m.read("q", "x") == 2
    return m.history() == FIG4.history


def test_fig4_claims(record_claims, benchmark):
    record_claims.set_title("E4 / Figure 4: causal history that is not TSO")
    benchmark.group = "claims"

    def verify():
        h = FIG4.history
        stale = parse_history(FIG4_STALE_Y)
        return [
            ("allowed by causal memory", True, check_causal(h).allowed),
            ("allowed by TSO", False, check_tso(h).allowed),
            ("stale-y variant allowed by PRAM", True, check_pram(stale).allowed),
            ("stale-y variant allowed by causal", False, check_causal(stale).allowed),
            ("causal machine reaches it", True, _machine_reaches_fig4()),
        ]

    for claim, paper, measured in benchmark.pedantic(verify, rounds=1, iterations=1):
        record_claims(claim, paper, measured)


def test_bench_causal_checker_on_fig4(benchmark):
    h = FIG4.history
    result = benchmark(lambda: check_causal(h))
    assert result.allowed


def test_bench_tso_rejection_on_fig4(benchmark):
    h = FIG4.history
    result = benchmark(lambda: check_tso(h))
    assert not result.allowed
