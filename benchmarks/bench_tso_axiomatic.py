"""E8 — Section 3.2's equivalence claim: view-TSO vs axiomatic TSO.

The paper states its TSO characterization "is equivalent to the axiomatic
definition given in [Sindhu et al.]".  Measured: the view characterization
is *strictly stronger*.  Over the canonical 2×2 space the two agree on
every history without a same-location write→read program pattern, and the
paper's model rejects some store-forwarding outcomes (``sb-fwd``) that the
axioms — and the paper's own operational store-buffer description — allow.
This is the reproduction's one substantive divergence from the paper's
text; EXPERIMENTS.md discusses it.
"""

import pytest

from repro.checking import check_axiomatic_tso, check_tso
from repro.lattice import HistorySpace, canonical_key, enumerate_histories
from repro.litmus import CATALOG
from repro.machines import TSOMachine


def canonical_space():
    space = HistorySpace(procs=2, ops_per_proc=2)
    seen, out = set(), []
    for h in enumerate_histories(space):
        k = canonical_key(h)
        if k not in seen:
            seen.add(k)
            out.append(h)
    return out


def _has_forwarding_shape(history) -> bool:
    for proc in history.procs:
        ops = history.ops_of(proc)
        for i, a in enumerate(ops):
            if a.is_write and any(
                b.is_read and b.location == a.location for b in ops[i + 1:]
            ):
                return True
    return False


@pytest.fixture(scope="module")
def comparison():
    # The 2x2 grid has no same-location write->read program shapes, so the
    # catalog's three-op histories are added to expose the forwarding gap.
    histories = canonical_space() + [
        t.history
        for t in CATALOG.values()
        if t.history.has_distinct_write_values()
        and not any(op.kind.value == "u" for op in t.history.operations)
    ]
    agree = disagree = fwd_disagree = 0
    for h in histories:
        view = check_tso(h).allowed
        axio = check_axiomatic_tso(h).allowed
        if view == axio:
            agree += 1
        else:
            disagree += 1
            if _has_forwarding_shape(h):
                fwd_disagree += 1
            assert axio and not view, "containment direction broken"
    return agree, disagree, fwd_disagree


def test_e8_claims(comparison, record_claims, benchmark):
    record_claims.set_title("E8 / Section 3.2: view-TSO vs axiomatic TSO")
    benchmark.group = "claims"
    agree, disagree, fwd_disagree = comparison

    def verify():
        sb_fwd = CATALOG["sb-fwd"].history
        # The paper's own operational machine produces the divergent outcome.
        m = TSOMachine(("p", "q"))
        m.write("p", "x", 1)
        m.write("q", "y", 1)
        outcome = (
            m.read("p", "x"), m.read("p", "y"),
            m.read("q", "y"), m.read("q", "x"),
        )
        return [
            ("view-TSO contained in axiomatic TSO", True, True),
            # The paper claims full equivalence; we measure strict
            # containment: divergence exists, confined to forwarding shapes.
            ("divergences found", True, disagree > 0),
            ("all divergences are forwarding shapes", True,
             disagree == fwd_disagree),
            ("sb-fwd allowed by axiomatic TSO", True,
             check_axiomatic_tso(sb_fwd).allowed),
            ("sb-fwd allowed by view TSO", False, check_tso(sb_fwd).allowed),
            ("store-buffer machine realizes sb-fwd", True,
             outcome == (1, 0, 1, 0)),
        ]

    for claim, paper, measured in benchmark.pedantic(verify, rounds=1, iterations=1):
        record_claims(claim, paper, measured)
    total = agree + disagree
    print(
        f"\n   sweep space: {agree}/{total} agreements, "
        f"{disagree} divergences (all on forwarding shapes: "
        f"{disagree == fwd_disagree})"
    )


def test_bench_axiomatic_checker_sweep(benchmark):
    histories = canonical_space()

    def sweep():
        return sum(1 for h in histories if check_axiomatic_tso(h).allowed)

    count = benchmark(sweep)
    assert count > 0


def test_bench_view_tso_sweep(benchmark):
    histories = canonical_space()

    def sweep():
        return sum(1 for h in histories if check_tso(h).allowed)

    count = benchmark(sweep)
    assert count > 0
