"""E9 — Section 7: new memories by recombining the three parameters.

The paper's concluding remark: "a mutual consistency condition that
requires coherence can be added to causal memory."  We build exactly that
memory (CoherentCausal) plus the PRAM+coherence variant (PC-G, Goodman's
processor consistency) from the declarative spec framework and locate
both in the lattice empirically, and measures how CoherentCausal
relates to the plain intersection of causal memory and coherence (the
new memory requires one set of views to satisfy both at once).
"""

import pytest

from repro.checking import check
from repro.lattice import (
    HistorySpace,
    canonical_key,
    classify_histories,
    enumerate_histories,
)
from repro.litmus import CATALOG


def _pc_definitions_incomparable() -> bool:
    a = CATALOG["pcg-not-pcd"].history
    b = CATALOG["pcd-not-pcg"].history
    return (
        check(a, "PC-G").allowed
        and not check(a, "PC").allowed
        and check(b, "PC").allowed
        and not check(b, "PC-G").allowed
    )

MODELS = (
    "SC", "TSO", "Causal", "Coherence", "CoherentCausal",
    "PC-G", "PRAM", "PC", "Hybrid", "Slow",
)


def canonical_space():
    space = HistorySpace(procs=2, ops_per_proc=2)
    seen, out = set(), []
    for h in enumerate_histories(space):
        k = canonical_key(h)
        if k not in seen:
            seen.add(k)
            out.append(h)
    return out


@pytest.fixture(scope="module")
def classification():
    return classify_histories(canonical_space(), MODELS)


def test_e9_claims(classification, record_claims, benchmark):
    record_claims.set_title("E9 / Section 7: new memories from the parameters")
    benchmark.group = "claims"
    c = classification

    def verify():
        # CoherentCausal sits inside Causal ∩ Coherence by construction;
        # on this small space the inclusion measures as an equality (the
        # same views happen to satisfy both requirements whenever each is
        # satisfiable separately).  Recorded informationally.
        inter = c.allowed["Causal"] & c.allowed["Coherence"]
        coupled_gap = inter - c.allowed["CoherentCausal"]
        return [
            ("SC within CoherentCausal", True, c.contains("SC", "CoherentCausal")),
            ("CoherentCausal within Causal", True,
             c.contains("CoherentCausal", "Causal")),
            ("CoherentCausal within Coherence", True,
             c.contains("CoherentCausal", "Coherence")),
            ("CoherentCausal within Causal ∩ Coherence", True,
             c.allowed["CoherentCausal"] <= inter),
            ("inclusion strict on this space (informational)", "-",
             bool(coupled_gap)),
            ("PC-G within Coherence", True, c.contains("PC-G", "Coherence")),
            ("PC-G within PRAM", True, c.contains("PC-G", "PRAM")),
            # Section 3.3's remark (citing Ahamad et al. [2]): the two PC
            # definitions are incomparable.  Witnessed by the catalog's
            # pcg-not-pcd / pcd-not-pcg entries.
            ("PC-G vs DASH PC separating witnesses exist", True,
             _pc_definitions_incomparable()),
            # The extension models: hybrid consistency (strong/weak ops,
            # cited in Section 2) and slow memory (the lattice bottom).
            ("PRAM within unlabeled Hybrid", True,
             c.contains("PRAM", "Hybrid")),
            ("PRAM within Slow", True, c.contains("PRAM", "Slow")),
            ("Coherence within Slow", True, c.contains("Coherence", "Slow")),
            # On unlabeled histories hybrid imposes no ordering at all, so
            # it sits *below* even slow memory; slow bounds everything else.
            ("Slow contains every model except Hybrid", True,
             all(
                 c.contains(m, "Slow")
                 for m in MODELS
                 if m not in ("Slow", "Hybrid")
             )),
            ("Slow within unlabeled Hybrid", True, c.contains("Slow", "Hybrid")),
        ]

    for claim, paper, measured in benchmark.pedantic(verify, rounds=1, iterations=1):
        record_claims(claim, paper, measured)
    print(f"\n   counts: {c.counts()}")


def test_bench_coherent_causal_checker(benchmark):
    histories = canonical_space()[:60]

    def sweep():
        return sum(1 for h in histories if check(h, "CoherentCausal").allowed)

    assert benchmark(sweep) > 0


def test_bench_pcg_checker(benchmark):
    histories = canonical_space()[:60]

    def sweep():
        return sum(1 for h in histories if check(h, "PC-G").allowed)

    assert benchmark(sweep) > 0
