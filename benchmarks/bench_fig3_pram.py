"""E3 — Figure 3: a history allowed by PRAM but not by TSO.

Each processor writes x, reads its own value back, then reads the
other's: the processors disagree about the order of the two writes to
the *same* location, which PRAM's independent views permit and any
write-order agreement (TSO, PC, coherence) forbids.  The replicated-FIFO
PRAM machine reproduces the outcome operationally.
"""

from repro.checking import check_pram, check_tso
from repro.litmus import CATALOG
from repro.machines import PRAMMachine
from repro.programs import Read, Write, explore

FIG3 = CATALOG["fig3-pram-not-tso"]


def _iter_thread(ops):
    for op in ops:
        yield op


def _machine_reaches_fig3() -> bool:
    def setup():
        machine = PRAMMachine(("p", "q"))
        return machine, {
            "p": lambda: _iter_thread([Write("x", 1), Read("x"), Read("x")]),
            "q": lambda: _iter_thread([Write("x", 2), Read("x"), Read("x")]),
        }

    target = FIG3.history
    return any(r.history == target for r in explore(setup, max_steps=60))


def test_fig3_claims(record_claims, benchmark):
    record_claims.set_title("E3 / Figure 3: PRAM history that is not TSO")
    benchmark.group = "claims"

    def verify():
        h = FIG3.history
        pram = check_pram(h)
        # The paper prints S_{p+w} = w_p(x)1 r_p(x)1 w_q(x)2 r_p(x)2 exactly.
        paper_view = [str(op) for op in pram.views["p"]] == [
            "w_p(x)1", "r_p(x)1", "w_q(x)2", "r_p(x)2",
        ]
        return [
            ("allowed by PRAM", True, pram.allowed),
            ("allowed by TSO", False, check_tso(h).allowed),
            ("paper's S_{p+w} reproduced", True, paper_view),
            ("PRAM machine reaches it", True, _machine_reaches_fig3()),
        ]

    for claim, paper, measured in benchmark.pedantic(verify, rounds=1, iterations=1):
        record_claims(claim, paper, measured)


def test_bench_pram_checker_on_fig3(benchmark):
    h = FIG3.history
    result = benchmark(lambda: check_pram(h))
    assert result.allowed


def test_bench_pram_machine_exploration(benchmark):
    assert benchmark(_machine_reaches_fig3)
