"""E10a — checker performance and scaling.

The reproduction band notes pure-Python checking is workable but slow on
large traces; this experiment quantifies it: per-checker latency on the
paper's figures, scaling of the SC/TSO/PRAM checkers with history size,
and the cost split between the fast paths and the generic solver.
"""

import numpy as np
import pytest

from repro.analysis import random_history
from repro.checking import MODELS, check
from repro.litmus import CATALOG

FIG1 = CATALOG["fig1-sb"].history
FIG2 = CATALOG["fig2-pc-not-tso"].history
FIG4 = CATALOG["fig4-causal-not-tso"].history


@pytest.mark.parametrize(
    "model", ["SC", "TSO", "PC", "PRAM", "Causal", "Coherence", "TSO-axiomatic"]
)
def test_bench_checker_on_fig1(benchmark, model):
    benchmark.group = "fig1 per checker"
    result = benchmark(lambda: check(FIG1, model))
    assert result.allowed in (True, False)


@pytest.mark.parametrize("ops", [2, 3, 4, 5])
def test_bench_sc_scaling(benchmark, ops):
    benchmark.group = "SC scaling (2 procs, N ops each)"
    rng = np.random.default_rng(ops)
    histories = [
        random_history(rng, procs=2, ops_per_proc=ops, locations=("x", "y"))
        for _ in range(10)
    ]

    def sweep():
        return sum(1 for h in histories if check(h, "SC").allowed)

    benchmark(sweep)


@pytest.mark.parametrize("ops", [2, 3, 4])
def test_bench_tso_scaling(benchmark, ops):
    benchmark.group = "TSO scaling (2 procs, N ops each)"
    rng = np.random.default_rng(100 + ops)
    histories = [
        random_history(rng, procs=2, ops_per_proc=ops, locations=("x", "y"))
        for _ in range(10)
    ]

    def sweep():
        return sum(1 for h in histories if check(h, "TSO").allowed)

    benchmark(sweep)


@pytest.mark.parametrize("procs", [2, 3, 4])
def test_bench_pram_scaling_in_processors(benchmark, procs):
    benchmark.group = "PRAM scaling (N procs, 3 ops each)"
    rng = np.random.default_rng(200 + procs)
    histories = [
        random_history(rng, procs=procs, ops_per_proc=3, locations=("x", "y"))
        for _ in range(10)
    ]

    def sweep():
        return sum(1 for h in histories if check(h, "PRAM").allowed)

    benchmark(sweep)


def test_bench_fast_tso_vs_generic(benchmark):
    benchmark.group = "fast path vs generic solver"
    m = MODELS["TSO"]
    result = benchmark(lambda: m.check(FIG1))
    assert result.allowed


def test_bench_generic_tso(benchmark):
    benchmark.group = "fast path vs generic solver"
    m = MODELS["TSO"]
    result = benchmark(lambda: m.check_generic(FIG1))
    assert result.allowed


def test_bench_catalog_sweep_direct(benchmark):
    """Baseline: every catalog history × every model via direct check()."""
    benchmark.group = "catalog sweep: direct vs engine-cached"
    names = tuple(MODELS)

    def sweep():
        return sum(
            check(test.history, m).allowed
            for test in CATALOG.values()
            for m in names
        )

    allowed = benchmark(sweep)
    assert allowed > 0


def test_bench_catalog_sweep_engine_cached(benchmark):
    """Same sweep through the engine: relations computed once per history."""
    from repro.engine import CheckEngine

    benchmark.group = "catalog sweep: direct vs engine-cached"
    names = tuple(MODELS)

    def sweep():
        engine = CheckEngine(jobs=1)
        total = sum(
            sum(engine.classify(test.history, names).values())
            for test in CATALOG.values()
        )
        assert engine.cache.hit_rate > 0
        return total

    allowed = benchmark(sweep)
    assert allowed > 0


def test_bench_pc_semi_causality_cost(benchmark):
    benchmark.group = "PC on the paper figures"
    result = benchmark(lambda: check(FIG2, "PC"))
    assert result.allowed


def test_bench_causal_on_fig4(benchmark):
    benchmark.group = "causal on the paper figures"
    result = benchmark(lambda: check(FIG4, "Causal"))
    assert result.allowed
