"""E2 — Figure 2: a history allowed by PC but not by TSO.

The paper's three-processor example: r observes q's flag write without
p's data write, which no shared total write order can explain, but the
per-location coherence plus semi-causality of PC admits.  The witness
views printed by ``pytest -s`` match the structure of the paper's
Section 3.3 display.
"""

from repro.checking import check_pc, check_tso
from repro.litmus import CATALOG
from repro.viz import render_views

FIG2 = CATALOG["fig2-pc-not-tso"]


def test_fig2_claims(record_claims, benchmark):
    record_claims.set_title("E2 / Figure 2: PC history that is not TSO")
    benchmark.group = "claims"

    def verify():
        h = FIG2.history
        pc = check_pc(h)
        # The paper's explanation: r returns y=1 then x=0, so r's view
        # orders w(y)1 before w(x)1 while TSO's mutual consistency would
        # force the reverse everywhere.
        view_r = pc.views["r"]
        ordered = view_r.orders(h.op("q", 1), h.op("p", 0))
        rows = [
            ("allowed by PC", True, pc.allowed),
            ("allowed by TSO", False, check_tso(h).allowed),
            ("r's view orders w(y)1 before w(x)1", True, ordered),
        ]
        return rows, pc.views

    rows, views = benchmark.pedantic(verify, rounds=1, iterations=1)
    for claim, paper, measured in rows:
        record_claims(claim, paper, measured)
    print(render_views(views))


def test_bench_pc_checker_on_fig2(benchmark):
    h = FIG2.history
    result = benchmark(lambda: check_pc(h))
    assert result.allowed


def test_bench_tso_rejection_on_fig2(benchmark):
    h = FIG2.history
    result = benchmark(lambda: check_tso(h))
    assert not result.allowed
