"""E16 — incremental admission checking: amortized streaming speedup.

The streaming refactor's performance claim: admitting operations one at
a time through an :class:`~repro.kernel.incremental.IncrementalCheck`
must beat re-running a fresh full :func:`check_with_spec` on every
prefix — by at least **5× amortized** on the denial workload below —
while staying byte-identical to those fresh checks at every step.

The workload is adversarial for reuse: an IRIW-style core (two writer
processors racing on one location, two readers observing opposite
orders — denied by SC with a large candidate space) followed by a long
tail of non-rescuing reads that keeps the history growing without
changing the verdict.  Fresh per-prefix checks pay the full candidate
search on every append; the incremental session grows its plane in
place and replays the remembered failure modes, so each tail append
costs a handful of acyclicity probes instead of a view search.

Fidelity is asserted before any timing: per-op verdict, reason,
exploration count and witness parity against ``check_with_spec``, and
zero full-search fallbacks in the reuse counters.
"""

import time
from itertools import zip_longest

from repro.checking.models import MODELS
from repro.kernel.incremental import HistoryStream, IncrementalCheck
from repro.kernel.search import check_with_spec
from repro.litmus import parse_history
from repro.obs import SessionStatsSink, tracing

#: The denial core: IRIW scaled to three writes per writer, so the SC
#: search explores a real candidate space before giving up.
CORE = (
    "p: w(x)1 w(x)2 w(x)3 | q: w(x)4 w(x)5 w(x)6 "
    "| r: r(x)3 r(x)6 | s: r(x)6 r(x)3"
)

#: Ten non-rescuing reads per processor: initial-value reads of a fresh
#: location rescue nothing and add no write candidates, so the DENY is
#: sticky and every append is eligible for prefix reuse.
TAIL = " | ".join(
    f"{proc}: " + " ".join("r(z)0" for _ in range(10)) for proc in "pqrs"
)

SPEEDUP_FLOOR = 5.0
REPS = 3


def _interleaved(text):
    per_proc = {}
    for op in parse_history(text).operations:
        per_proc.setdefault(op.proc, []).append(op)
    return [
        op
        for round_ops in zip_longest(*per_proc.values())
        for op in round_ops
        if op is not None
    ]


def _workload():
    return _interleaved(CORE) + _interleaved(TAIL)


def _stream_once(spec, ops, sink=None):
    stream = HistoryStream()
    inc = IncrementalCheck(spec, stream)
    inc.check()
    t0 = time.perf_counter()
    with tracing(sink) if sink is not None else tracing(SessionStatsSink()):
        for op in ops:
            placed, reused = stream.append(op)
            result = inc.on_appended((placed,), reused)
    return time.perf_counter() - t0, result


def _fresh_prefixes_once(spec, ops):
    stream = HistoryStream()
    t0 = time.perf_counter()
    for op in ops:
        stream.append(op)
        result = check_with_spec(spec, stream.history)
    return time.perf_counter() - t0, result


def test_incremental_claims(record_claims):
    record_claims.set_title("E16: amortized incremental streaming speedup")
    spec = MODELS["SC"].spec
    ops = _workload()

    # Fidelity first: every prefix byte-identical to a fresh check.
    stream = HistoryStream()
    inc = IncrementalCheck(spec, stream)
    inc.check()
    for op in ops:
        placed, reused = stream.append(op)
        got = inc.on_appended((placed,), reused)
        want = check_with_spec(spec, stream.history)
        assert (got.allowed, got.reason, got.explored, got.views) == (
            want.allowed,
            want.reason,
            want.explored,
            want.views,
        ), f"diverged at {len(stream.history.operations)} ops"

    sink = SessionStatsSink()
    t_inc = min(
        _stream_once(spec, ops, sink if r == 0 else None)[0]
        for r in range(REPS)
    )
    t_fresh, final = min(
        (_fresh_prefixes_once(spec, ops) for _ in range(REPS)),
        key=lambda pair: pair[0],
    )
    speedup = t_fresh / t_inc
    counters = sink.session_counters()

    record_claims("streamed ops", "-", len(ops))
    record_claims("final verdict (SC)", False, final.allowed)
    record_claims(
        f"amortized speedup >= {SPEEDUP_FLOOR:.0f}x",
        True,
        speedup >= SPEEDUP_FLOOR,
    )
    record_claims("full-search fallbacks", 0, counters["fallbacks"])
    record_claims(
        "appends that grew the plane in place",
        len(ops) - 2,  # the two rescue-triggered recompiles in the core
        counters["planes_grown"],
    )
    record_claims(
        "measured speedup",
        "-",
        f"{speedup:.1f}x ({t_fresh * 1e3:.1f} ms -> {t_inc * 1e3:.1f} ms)",
    )


def test_bench_stream_appends(benchmark):
    """Time the incremental session over the full workload."""
    spec = MODELS["SC"].spec
    ops = _workload()
    benchmark.group = "incremental-vs-fresh"
    _, result = benchmark.pedantic(
        lambda: _stream_once(spec, ops), rounds=3, iterations=1
    )
    assert not result.allowed


def test_bench_fresh_prefix_checks(benchmark):
    """Baseline: a fresh full check after every append."""
    spec = MODELS["SC"].spec
    ops = _workload()
    benchmark.group = "incremental-vs-fresh"
    _, result = benchmark.pedantic(
        lambda: _fresh_prefixes_once(spec, ops), rounds=3, iterations=1
    )
    assert not result.allowed
