"""E5 — Figure 5: the containment lattice of memories, reproduced.

Exhaustively enumerates the canonical 2-processor × 2-operation history
space, classifies every history under every model, and checks that the
measured strict-containment diagram equals the paper's Figure 5 — with
per-model allowed-history counts (the sizes of the paper's Venn regions)
printed for the record.  Strictness witnesses are drawn from inside the
space; the catalog's figures serve as the paper's own separators.
"""

import pytest

from repro.analysis import format_counts
from repro.lattice import (
    FIGURE5_EDGES,
    HistorySpace,
    canonical_key,
    classify_histories,
    containment_violations,
    empirical_hasse,
    enumerate_histories,
    hasse_levels,
    paper_hasse,
    separating_witnesses,
)
from repro.litmus import format_history
from repro.viz import render_lattice

MODELS = ("SC", "TSO", "PC", "Causal", "PRAM")


def canonical_space():
    space = HistorySpace(procs=2, ops_per_proc=2)
    seen, out = set(), []
    for h in enumerate_histories(space):
        k = canonical_key(h)
        if k not in seen:
            seen.add(k)
            out.append(h)
    return out


@pytest.fixture(scope="module")
def classification():
    return classify_histories(canonical_space(), MODELS)


def test_fig5_claims(classification, record_claims, benchmark):
    record_claims.set_title("E5 / Figure 5: the memory lattice")
    benchmark.group = "claims"

    def verify():
        violations = containment_violations(classification, FIGURE5_EDGES)
        wits = separating_witnesses(classification, FIGURE5_EDGES)
        measured = empirical_hasse(classification)
        rows = [("containment violations", 0, len(violations))]
        rows.extend(
            (f"{a} strictly in {b}", True, wits[(a, b)] is not None)
            for a, b in FIGURE5_EDGES
        )
        rows.append(
            ("PC and Causal incomparable", True,
             classification.incomparable("PC", "Causal"))
        )
        rows.append(
            ("measured Hasse == paper Figure 5", True,
             set(measured.edges()) == set(paper_hasse().edges()))
        )
        return rows, wits, measured

    rows, wits, measured = benchmark.pedantic(verify, rounds=1, iterations=1)
    for claim, paper, got in rows:
        record_claims(claim, paper, got)
    total = len(classification.histories)
    print(f"\n   allowed-history counts over {total} canonical histories:")
    print(format_counts(classification.counts(), total))
    print("\n   measured lattice:")
    print(render_lattice(measured))
    print("\n   sample separators found inside the space:")
    for edge, w in wits.items():
        if w is not None:
            print(f"   {edge[0]} < {edge[1]}: {format_history(w, oneline=True)}")


def test_fig5_exhaustive_2x3_space(record_claims, benchmark):
    """The lattice verified exhaustively on the larger 2×3 space.

    12,189 canonical histories (48,388 raw before symmetry reduction) —
    this space contains the store-forwarding and per-location-
    disagreement shapes the 2×2 grid cannot express, so reproducing
    Figure 5 here is a substantially stronger check (~12 s).
    """
    record_claims.set_title("E5b / Figure 5 on the exhaustive 2×3 space")
    benchmark.group = "claims"

    def verify():
        space = HistorySpace(procs=2, ops_per_proc=3)
        seen, hs = set(), []
        for h in enumerate_histories(space):
            k = canonical_key(h)
            if k not in seen:
                seen.add(k)
                hs.append(h)
        result = classify_histories(hs, MODELS)
        violations = containment_violations(result, FIGURE5_EDGES)
        wits = separating_witnesses(result, FIGURE5_EDGES)
        measured_hasse = empirical_hasse(result)
        return [
            ("canonical 2x3 histories", 12189, len(hs)),
            ("containment violations", 0, len(violations)),
            ("all strictness witnesses in-space", True,
             all(w is not None for w in wits.values())),
            ("PC and Causal incomparable", True,
             result.incomparable("PC", "Causal")),
            ("measured Hasse == paper Figure 5", True,
             set(measured_hasse.edges()) == set(paper_hasse().edges())),
        ], result.counts()

    (rows, counts) = benchmark.pedantic(verify, rounds=1, iterations=1)
    for claim, paper, measured in rows:
        record_claims(claim, paper, measured)
    print(f"\n   2x3 counts: {counts}")


def test_bench_enumerate_canonical_space(benchmark):
    out = benchmark(canonical_space)
    assert len(out) == 210


def test_bench_classify_space_all_models(benchmark):
    histories = canonical_space()
    result = benchmark(lambda: classify_histories(histories, MODELS))
    assert result.counts()["SC"] == 140


def test_bench_hasse_construction(benchmark, classification):
    g = benchmark(lambda: empirical_hasse(classification))
    assert hasse_levels(g)[0] == ["SC"]
