"""Ablations of the design choices DESIGN.md calls out.

Two load-bearing optimizations in the decision procedures, measured with
the switch on and off (verdicts are asserted identical):

* **reads-from pruning** — deriving forced write-order edges from the
  unique reads-from attribution before enumerating TSO write orders /
  coherence orders.  Without it the serialization enumeration explores
  every interleaving.
* **failure-state memoization** in the legal-extension kernel — caching
  failing (placed-set, memory-state) pairs.  Without it unsatisfiable
  instances revisit dead subtrees exponentially often.

Also measured: the TSO fast path (greedy read placement) against the
generic solver on the same histories, quantifying the third design choice.
"""


from repro.checking import MODELS, SearchBudget, check_with_spec, find_legal_extension
from repro.litmus import parse_history
from repro.orders import po_relation
from repro.spec import TSO_SPEC

# TSO-unsatisfiable history where two processors read a location and then
# overwrite it: reads-from forces write-order edges, so pruning shrinks
# the (fully exhausted) serialization enumeration 4x.
PRUNABLE = parse_history(
    "p: w(x)1 w(y)9 | q: r(x)1 w(x)2 r(c)0 | t: r(y)9 w(y)10 | "
    "r: w(a)3 w(b)4 | s: r(y)9 r(x)0"
)

# Unsatisfiable SC instance used for verdict-identity checks.
UNSAT = parse_history(
    "p: w(x)1 r(y)0 w(a)3 r(b)0 | q: w(y)2 r(x)0 w(b)4 r(a)0"
)


def _deep_unsat():
    """Memoization's showcase: two 10-write chains ending in impossible reads.

    The reachable search states collapse to (chain position, chain
    position) pairs — about 120 — while the raw path count is the central
    binomial C(20,10) ≈ 184k; memoization turns a multi-second exhaustive
    failure into milliseconds (~600x measured).
    """
    from repro.core import HistoryBuilder

    b = HistoryBuilder()
    b.proc("p")
    for i in range(10):
        b.write("a", i + 1)
    b.read("y", 9)
    b.proc("q")
    for i in range(10):
        b.write("b", i + 101)
    b.read("x", 9)
    return b.build()


DEEP_UNSAT = _deep_unsat()


def test_ablation_verdicts_identical(benchmark):
    """The switches are pure optimizations: verdicts never change."""
    benchmark.group = "claims"

    def verify():
        for history in (PRUNABLE, UNSAT):
            on = check_with_spec(TSO_SPEC, history, SearchBudget())
            off = check_with_spec(
                TSO_SPEC, history, SearchBudget(use_reads_from_pruning=False)
            )
            assert on.allowed == off.allowed
            # The pruned search explores no more candidates than the unpruned.
            assert on.explored <= off.explored
        rel = po_relation(UNSAT)
        assert (
            find_legal_extension(UNSAT.operations, rel, memoize=True)
            == find_legal_extension(UNSAT.operations, rel, memoize=False)
        )
        return True

    assert benchmark.pedantic(verify, rounds=1, iterations=1)


def test_bench_tso_with_rf_pruning(benchmark):
    benchmark.group = "ablation: reads-from pruning (TSO)"
    result = benchmark(lambda: check_with_spec(TSO_SPEC, PRUNABLE, SearchBudget()))
    assert not result.allowed and result.explored == 45


def test_bench_tso_without_rf_pruning(benchmark):
    benchmark.group = "ablation: reads-from pruning (TSO)"
    result = benchmark(
        lambda: check_with_spec(
            TSO_SPEC, PRUNABLE, SearchBudget(use_reads_from_pruning=False)
        )
    )
    assert not result.allowed and result.explored == 180


def test_bench_extension_with_memoization(benchmark):
    benchmark.group = "ablation: failure memoization (deep unsat)"
    rel = po_relation(DEEP_UNSAT)
    result = benchmark(
        lambda: find_legal_extension(DEEP_UNSAT.operations, rel, memoize=True)
    )
    assert result is None


def test_bench_extension_without_memoization(benchmark):
    benchmark.group = "ablation: failure memoization (deep unsat)"
    rel = po_relation(DEEP_UNSAT)
    result = benchmark.pedantic(
        lambda: find_legal_extension(DEEP_UNSAT.operations, rel, memoize=False),
        rounds=3,
        iterations=1,
    )
    assert result is None


def test_bench_tso_fast_path(benchmark):
    benchmark.group = "ablation: TSO fast path vs generic"
    m = MODELS["TSO"]
    result = benchmark(lambda: m.check(PRUNABLE))
    assert not result.allowed


def test_bench_tso_generic_path(benchmark):
    benchmark.group = "ablation: TSO fast path vs generic"
    m = MODELS["TSO"]
    result = benchmark(lambda: m.check_generic(PRUNABLE))
    assert not result.allowed
