"""E6 — Figure 6 / Section 5: the Bakery algorithm distinguishes RC_sc and RC_pc.

The paper's headline experiment, regenerated at all three levels:

* the Section 5 violating history is allowed by RC_pc and rejected by RC_sc;
* running Figure 6's code on the RC_sc machine never violates mutual
  exclusion (random schedules), while the RC_pc machine does (adversarial
  delivery delay, and a measurable rate under random schedules);
* the violating machine trace itself is RC_pc-allowed and RC_sc-rejected.

The benchmark half measures the RC checkers on the Section 5 history and
the machine's runtime cost per Bakery run.
"""

import pytest

from repro.analysis import fraction
from repro.checking import check_rc_pc, check_rc_sc
from repro.litmus import parse_history
from repro.machines import RCMachine
from repro.programs import DelayDeliveriesScheduler, RandomScheduler, run
from repro.programs.mutex import bakery_program

SECTION5_HISTORY = parse_history(
    "p1: w*(c0)1 r*(n1)0 w*(n0)1 w*(c0)0 r*(c1)0 r*(n1)0 w(cs)1 | "
    "p2: w*(c1)1 r*(n0)0 w*(n1)1 w*(c1)0 r*(c0)0 r*(n0)0 w(cs)2"
)

RANDOM_SEEDS = range(200)


def _random_violation_count(mode: str) -> int:
    count = 0
    for seed in RANDOM_SEEDS:
        result = run(
            RCMachine(("p0", "p1"), labeled_mode=mode),
            bakery_program(2),
            RandomScheduler(seed),
            max_steps=4000,
        )
        if result.mutex_violation:
            count += 1
    return count


@pytest.fixture(scope="module")
def adversarial_violation():
    result = run(
        RCMachine(("p0", "p1"), labeled_mode="pc"),
        bakery_program(2),
        DelayDeliveriesScheduler(),
        max_steps=4000,
    )
    return result


def test_fig6_claims(record_claims, adversarial_violation, benchmark):
    record_claims.set_title("E6 / Section 5: Bakery on RC_sc vs RC_pc")
    benchmark.group = "claims"

    def verify():
        sc_violations = _random_violation_count("sc")
        pc_violations = _random_violation_count("pc")
        trace = adversarial_violation.history
        rows = [
            ("Section 5 history allowed by RC_pc", True,
             check_rc_pc(SECTION5_HISTORY).allowed),
            ("Section 5 history allowed by RC_sc", False,
             check_rc_sc(SECTION5_HISTORY).allowed),
            ("RC_sc machine violations (random)", 0, sc_violations),
            ("RC_pc machine violates (random)", True, pc_violations > 0),
            ("RC_pc machine violates (adversarial)", True,
             adversarial_violation.mutex_violation),
            ("violating trace is RC_pc", True, check_rc_pc(trace).allowed),
            ("violating trace is RC_sc", False, check_rc_sc(trace).allowed),
        ]
        return rows, sc_violations, pc_violations

    rows, sc_violations, pc_violations = benchmark.pedantic(
        verify, rounds=1, iterations=1
    )
    for claim, paper, measured in rows:
        record_claims(claim, paper, measured)
    print(
        f"\n   random-schedule violation rates over {len(RANDOM_SEEDS)} runs: "
        f"RC_sc {fraction(sc_violations, len(RANDOM_SEEDS))}, "
        f"RC_pc {fraction(pc_violations, len(RANDOM_SEEDS))}"
    )


def test_bench_rc_pc_checker_on_section5(benchmark):
    result = benchmark(lambda: check_rc_pc(SECTION5_HISTORY))
    assert result.allowed


def test_bench_rc_sc_checker_on_section5(benchmark):
    result = benchmark(lambda: check_rc_sc(SECTION5_HISTORY))
    assert not result.allowed


def test_bench_bakery_run_on_rc_sc_machine(benchmark):
    def one_run():
        return run(
            RCMachine(("p0", "p1"), labeled_mode="sc"),
            bakery_program(2),
            RandomScheduler(17),
            max_steps=4000,
        )

    result = benchmark(one_run)
    assert result.completed and not result.mutex_violation


def test_bench_bakery_run_on_rc_pc_machine_adversarial(benchmark):
    def one_run():
        return run(
            RCMachine(("p0", "p1"), labeled_mode="pc"),
            bakery_program(2),
            DelayDeliveriesScheduler(),
            max_steps=4000,
        )

    result = benchmark(one_run)
    assert result.mutex_violation
