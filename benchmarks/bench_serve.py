"""E15 — the check service: HTTP round-trip cost and store-warm speedups.

Three claims from the serve acceptance criteria, asserted rather than
just measured:

* **Fidelity under load** — a sustained run of catalog checks over real
  HTTP returns exactly the in-process verdicts, every time.
* **Warm beats cold** — answering a repeated check from the
  content-addressed store (or the in-memory cache) is faster than
  re-searching it, so the service amortizes.
* **Tail behavior** — p99 latency over the sustained run stays within an
  order-of-magnitude envelope of p50 (no pathological outliers from the
  asyncio loop or the worker pool).

The timed groups compare cold checks (fresh key, full search) against
warm ones (same key, served from cache) through the whole HTTP stack.
"""

import http.client
import json
import statistics
import time

import pytest

from repro.checking.models import MODELS, PAPER_MODELS
from repro.kernel.search import check_with_spec
from repro.litmus import CATALOG
from repro.serve import ServeConfig, ServerThread

_MODELS_PARAM = ",".join(PAPER_MODELS)


def _post_check(port, history, *, conn=None):
    owned = conn is None
    if owned:
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    conn.request(
        "POST",
        "/check",
        body=json.dumps({"history": history, "models": _MODELS_PARAM}),
    )
    response = conn.getresponse()
    payload = json.loads(response.read())
    if owned:
        conn.close()
    assert response.status == 200, payload
    return payload


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("bench_serve")
    config = ServeConfig(
        port=0,
        workers=2,
        store_url=f"sqlite:{tmp}/bench.db",
        log_requests=False,
    )
    with ServerThread(config) as srv:
        yield srv


def test_sustained_throughput_with_exact_verdicts(server):
    """Catalog checks over HTTP, repeated: correct, and counted per second."""
    expected = {
        name: {
            model: check_with_spec(MODELS[model].spec, entry.history).allowed
            for model in PAPER_MODELS
        }
        for name, entry in CATALOG.items()
    }
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=60)
    latencies = []
    rounds = 5
    t0 = time.perf_counter()
    for _ in range(rounds):
        for name in CATALOG:
            t1 = time.perf_counter()
            payload = _post_check(server.port, name, conn=conn)
            latencies.append(time.perf_counter() - t1)
            assert payload["models"] == expected[name], name
    elapsed = time.perf_counter() - t0
    conn.close()

    n = len(latencies)
    p50 = statistics.median(latencies)
    p99 = sorted(latencies)[int(n * 0.99)]
    print(
        f"\n{n} checks in {elapsed:.2f}s ({n / elapsed:.0f} req/s, "
        f"keep-alive); p50 {p50 * 1e3:.2f}ms, p99 {p99 * 1e3:.2f}ms"
    )
    assert n / elapsed > 20, f"throughput collapsed: {n / elapsed:.0f} req/s"
    # Tail envelope: p99 within 50x of p50 (generous; catches hangs).
    assert p99 < max(p50 * 50, 0.25)


def test_warm_store_beats_cold_check(tmp_path_factory):
    """The content address turns the store into a cache: warm < cold."""
    tmp = tmp_path_factory.mktemp("warm_cold")
    name = "fig4-causal-not-tso"
    config = ServeConfig(
        port=0, workers=1, store_url=f"sqlite:{tmp}/wc.db", log_requests=False
    )
    with ServerThread(config) as srv:
        cold = _timed(lambda: _post_check(srv.port, name))  # full search
        warm = min(
            _timed(lambda: _post_check(srv.port, name)) for _ in range(5)
        )
        payload = _post_check(srv.port, name)
    assert payload["cached"] is True
    print(
        f"\n{name}: cold {cold * 1e3:.2f}ms, warm {warm * 1e3:.2f}ms "
        f"({cold / warm:.1f}x)"
    )
    assert warm <= cold


def _timed(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


@pytest.fixture(scope="module")
def warmed(server):
    for name in CATALOG:
        _post_check(server.port, name)
    return server


@pytest.mark.parametrize("path", ["store-hit", "memory-hit"])
def test_bench_http_check(benchmark, warmed, path, tmp_path_factory):
    """One repeat POST /check through the full stack, per answer path."""
    benchmark.group = "HTTP POST /check: fig1-sb x paper models (repeat)"
    if path == "memory-hit":
        benchmark(lambda: _post_check(warmed.port, "fig1-sb"))
    else:
        tmp = tmp_path_factory.mktemp("bench_store_hit")
        config = ServeConfig(
            port=0,
            workers=1,
            store_url=f"sqlite:{tmp}/sh.db",
            result_cache=0,  # every request re-reads the store index
            log_requests=False,
        )
        with ServerThread(config) as srv:
            _post_check(srv.port, "fig1-sb")  # land the record
            benchmark(lambda: _post_check(srv.port, "fig1-sb"))
